// Package core is the distributed deductive query engine — the paper's
// primary contribution. It compiles an analyzed logic program into
// per-node runtimes that evaluate the program bottom-up, incrementally
// and asynchronously inside a simulated sensor network:
//
//   - base facts are injected at their source nodes and stored/replicated
//     according to the Generalized Perpendicular Approach scheme in force
//     (or a node-attribute placement declared with .store);
//   - after the storage-phase delay τs+τc, an update's join-computation
//     phase sweeps its join region accumulating partial results
//     (Figure 1), filtering against negated subgoals, and emitting
//     complete results;
//   - complete results are routed to a home node (geographic hash or
//     declared placement), where the set-of-derivations store decides
//     whether the derived tuple appears or disappears (Section IV-A);
//     transitions make the derived tuple itself a stream update,
//     cascading through higher rules;
//   - deletions travel the same paths as deletion markers and remove
//     matching derivations (Theorem 3 machinery).
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/datalog/analysis"
	"repro/internal/datalog/ast"
	"repro/internal/datalog/builtin"
	"repro/internal/datalog/eval"
	"repro/internal/ghash"
	"repro/internal/gpa"
	"repro/internal/nsim"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/routing"
	"repro/internal/window"
)

// Config tunes the engine.
type Config struct {
	// Scheme is the GPA scheme for hash-placed predicates.
	Scheme gpa.Scheme
	// Server is the sink node for the Centralized scheme.
	Server nsim.NodeID
	// MultiPass switches the join-computation phase from the one-pass to
	// the multiple-pass scheme (one traversal per remaining stream).
	MultiPass bool
	// SpatialRadius scopes storage/join regions (0 = unbounded).
	SpatialRadius float64
	// BandWidth generalizes PA's rows/columns to geographic bands of this
	// width for arbitrary (non-grid) topologies. Band mode supports
	// two-stream positive joins (the paper defers the full general-
	// topology construction to [44]).
	BandWidth float64
	// CentroidRadius bounds the Centroid scheme's central region
	// (default 1.5 radio ranges around the bounding-box center).
	CentroidRadius float64
	// TauS bounds storage-phase completion; TauC is the clock-skew bound;
	// TauJ bounds join-phase completion. Zero values are derived from the
	// network geometry.
	TauS, TauC, TauJ nsim.Time
	// FinalizeGap separates the finalize delays of same-stage predicates
	// (XY evaluation order). Zero derives a default.
	FinalizeGap nsim.Time
	// DefaultWindow is the sliding-window range for streams without a
	// .window declaration (0 = unbounded).
	DefaultWindow int64
	// Registry supplies built-ins (nil = builtin.Default()).
	Registry *builtin.Registry
	// NaiveJoin disables the window stores' argument-position indexes
	// (full visible-scan lookups). Retained for A/B determinism checks
	// and benchmarks; results and message counts are identical.
	NaiveJoin bool
	// BatchLinks coalesces the store/join/result tuples a node emits
	// within one tick into a single framed link message per destination,
	// accounted as one shared 8-byte header plus the sum of the tuple
	// payloads. Default off: the per-tuple messages are the paper's
	// accounting unit, and every published table is produced with
	// batching disabled. The final derived database is identical either
	// way (see TestBatchLinksEquivalence).
	BatchLinks bool
	// LegacyRouting bypasses the per-engine nearest-node cache and calls
	// the stateless routing functions on every hop, restoring the
	// pre-cache rescan behavior. Results are identical; retained (like
	// NaiveJoin) so the cache can be A/B benchmarked.
	LegacyRouting bool
	// NodeTerm names a node as a term for placement-based storage; the
	// default is the symbol n<id>.
	NodeTerm func(n *nsim.Node) ast.Term
	// ReplayLog keeps a per-node log of every generation (insert or
	// delete, base or cascaded derived) so Engine.ReplayAt can repair
	// state lost to injected faults by re-executing the log with the
	// original stamps (see replay.go). Default off: the log is pure
	// overhead on fault-free runs and would perturb the allocation
	// baselines.
	ReplayLog bool
	// Shards, when ≥ 2, runs the simulator's sharded scheduler with that
	// many spatial shards (forwarded to nsim via SetShards, since New
	// runs before nw.Finalize) and attaches the engine's per-shard state:
	// one routing cache per shard plus result/trace buffers folded
	// deterministically at window barriers (shard.go). 0 or 1 keeps the
	// single-threaded scheduler with byte-identical results.
	Shards int
}

func (c *Config) fill(nw *nsim.Network) {
	if c.Registry == nil {
		c.Registry = builtin.Default()
	}
	if c.NodeTerm == nil {
		c.NodeTerm = func(n *nsim.Node) ast.Term {
			return ast.Symbol(fmt.Sprintf("n%d", n.ID))
		}
	}
	minX, minY, maxX, maxY := boundsOf(nw)
	diamHops := nsim.Time((maxX-minX)+(maxY-minY)) + 4
	hop := nw.Config().MaxDelay
	if c.TauS == 0 {
		c.TauS = 2 * diamHops * hop
	}
	if c.TauC == 0 {
		c.TauC = nw.Config().MaxSkew
	}
	if c.TauJ == 0 {
		c.TauJ = 2 * diamHops * hop
	}
	if c.FinalizeGap == 0 {
		c.FinalizeGap = c.TauS + c.TauC + 4*hop
	}
}

func boundsOf(nw *nsim.Network) (minX, minY, maxX, maxY float64) {
	minX, minY = 1e18, 1e18
	maxX, maxY = -1e18, -1e18
	for _, n := range nw.Nodes() {
		if n.X < minX {
			minX = n.X
		}
		if n.Y < minY {
			minY = n.Y
		}
		if n.X > maxX {
			maxX = n.X
		}
		if n.Y > maxY {
			maxY = n.Y
		}
	}
	return
}

// ruleMode distinguishes hash-placed (GPA) rules from node-placement
// (localized-join) rules.
type ruleMode int

const (
	hashMode ruleMode = iota
	localMode
)

// compiledRule is the per-rule execution plan.
type compiledRule struct {
	rule   *ast.Rule
	mode   ruleMode
	posIdx []int // positive relational body indices, in order
	negIdx []int
	// negSameStage[i] = true when negIdx[i] refers to a predicate in the
	// head's XY component (checked at finalize against live state rather
	// than by stamp order).
	negSameStage []bool
}

// trigger links a stream update to a rule evaluation.
type trigger struct {
	rule    *compiledRule
	bodyIdx int  // which body literal the update pins
	negated bool // pinned at a negated subgoal (retraction/enable path)
}

// Engine is the compiled distributed program.
type Engine struct {
	nw   *nsim.Network
	prog *ast.Program
	res  *analysis.Result
	cfg  Config
	// router caches nearest-node lookups for the geographic-unicast
	// termination test, which every walker hop performs.
	router *routing.Engine
	// shards holds the engine's per-shard state when the network runs the
	// sharded scheduler: a private routing cache per shard (the shared
	// cache's map would race) plus result buffers drained at real window
	// barriers (shard.go). Empty on single-threaded runs.
	shards []engineShard
	// aggMu serializes writes to aggResults: aggregation sinks finalize
	// epochs on their own shards' goroutines.
	aggMu sync.Mutex

	rules     []*compiledRule
	triggers  map[string][]trigger // predKey -> triggers
	hasher    *ghash.Hasher
	planner   *gpa.Planner
	nodeTerms map[string]nsim.NodeID // term key -> node
	// finalizePrio orders same-stage predicates (XY witness); predicates
	// absent from the map finalize with priority 0.
	finalizePrio map[string]int
	// windows per predicate (0 = unbounded).
	windows map[string]int64
	// windowPreds lists the predicates with a positive window range, so
	// the per-event expiry sweep iterates a slice instead of the map.
	windowPreds []string
	// placements per predicate.
	placements map[string]ast.Placement
	// queryPreds marks predicates whose transitions are logged.
	queryPreds map[string]bool

	rts []*nodeRT // per-node runtimes, indexed by NodeID

	// baseIDs registers injected base generations for later deletion:
	// tuple key -> stamp.
	baseIDs map[string]window.Stamp

	// centroidNodes is the Centroid scheme's storage region.
	centroidNodes []nsim.NodeID

	// knownPreds holds every predicate key the program mentions (rule
	// heads and bodies, base declarations, windows, placements,
	// queries); injection validation checks against it.
	knownPreds map[string]bool

	// Observability handles (observe.go). All nil until Observe is
	// called: the nil counter/trace are no-ops, so the uninstrumented
	// hot path pays one predictable nil check per site.
	trace        *obs.Trace
	cProbes      *obs.Counter
	cJoins       *obs.Counter
	cCandidates  *obs.Counter
	cSettles     *obs.Counter
	cDerivations *obs.Counter
	cDeletions   *obs.Counter
	predDerive   map[string]*obs.Counter
	predDelete   map[string]*obs.Counter
	// Histograms (Observe with a registry): settle latency, candidate
	// routing hops, derivation fan-in. Nil histograms are no-ops.
	hSettle *obs.Histogram
	hHops   *obs.Histogram
	hFanin  *obs.Histogram
	// prov captures per-derivation lineage (ObserveProvenance). Nil
	// until attached; every capture site is nil-guarded.
	prov *provenance.Graph

	// TAG aggregation state.
	aggRules   map[string]*aggRule     // head pred -> plan
	aggResults map[string][]eval.Tuple // head pred -> last epoch result
	aggEpoch   int64

	// ResultLog records finalized transitions of query predicates.
	ResultLog []ResultEvent

	// finalizeFloor lifts finalize deadlines of candidates carrying
	// pre-floor update stamps, so a replay's re-issued candidates (old
	// stamps, deadlines long past) all buffer until the repair traffic
	// settles and then apply in one stamp-ordered drain — restoring the
	// Theorem 3 ordering that the original deadlines enforced. Raised to
	// the current time by each ReplayAt; zero until then.
	finalizeFloor nsim.Time
}

// ResultEvent is one visible transition of a query predicate.
type ResultEvent struct {
	Tuple  eval.Tuple
	Insert bool
	At     nsim.Time // global time of finalization
	Node   nsim.NodeID
}

// New compiles prog onto the network. Must be called before nw.Finalize.
func New(nw *nsim.Network, prog *ast.Program, cfg Config) (*Engine, error) {
	res, err := analysis.Analyze(prog)
	if err != nil {
		return nil, err
	}
	cfg.fill(nw)
	if cfg.Shards > 0 {
		nw.SetShards(cfg.Shards)
	}
	e := &Engine{
		nw:           nw,
		prog:         prog,
		res:          res,
		cfg:          cfg,
		router:       routing.NewEngine(nw),
		triggers:     make(map[string][]trigger),
		hasher:       ghash.ForNetwork(nw),
		planner:      gpa.NewPlanner(nw, cfg.Scheme),
		nodeTerms:    make(map[string]nsim.NodeID),
		finalizePrio: make(map[string]int),
		windows:      make(map[string]int64),
		placements:   prog.Placements,
		queryPreds:   make(map[string]bool),
		baseIDs:      make(map[string]window.Stamp),
		aggRules:     make(map[string]*aggRule),
		aggResults:   make(map[string][]eval.Tuple),
	}
	// Aggregate rules are evaluated by TAG collection epochs, not by the
	// join machinery; validate and register them.
	for _, r := range prog.Rules {
		if !r.HasAggregates() {
			continue
		}
		plan, err := validateAggregateRule(r)
		if err != nil {
			return nil, err
		}
		e.aggRules[r.Head.PredKey()] = plan
	}
	e.planner.Server = cfg.Server
	e.planner.SpatialRadius = cfg.SpatialRadius
	e.planner.BandWidth = cfg.BandWidth
	for _, n := range nw.Nodes() {
		e.nodeTerms[cfg.NodeTerm(n).Key()] = n.ID
	}
	for _, w := range res.XY {
		for i, p := range w.SameStageOrder {
			e.finalizePrio[p] = i
		}
	}
	for _, q := range prog.Queries {
		e.queryPreds[q] = true
	}
	// Window ranges.
	allPreds := map[string]bool{}
	for _, r := range prog.Rules {
		allPreds[r.Head.PredKey()] = true
		for _, l := range r.Body {
			if !l.Builtin {
				allPreds[l.PredKey()] = true
			}
		}
	}
	for p := range allPreds {
		if w, ok := prog.Windows[p]; ok {
			e.windows[p] = w
		} else {
			e.windows[p] = cfg.DefaultWindow
		}
	}
	for p, w := range e.windows {
		if w > 0 {
			e.windowPreds = append(e.windowPreds, p)
		}
	}
	sort.Strings(e.windowPreds)

	e.knownPreds = make(map[string]bool, len(allPreds))
	for p := range allPreds {
		e.knownPreds[p] = true
	}
	for p := range prog.Base {
		e.knownPreds[p] = true
	}
	for p := range prog.Windows {
		e.knownPreds[p] = true
	}
	for p := range prog.Placements {
		e.knownPreds[p] = true
	}
	for _, p := range prog.Queries {
		e.knownPreds[p] = true
	}

	if cfg.Scheme == gpa.Centroid {
		if cfg.CentroidRadius == 0 {
			cfg.CentroidRadius = 1.5 * nw.Config().Range
			e.cfg.CentroidRadius = cfg.CentroidRadius
		}
		minX, minY, maxX, maxY := boundsOf(nw)
		cx, cy := (minX+maxX)/2, (minY+maxY)/2
		for _, n := range nw.Nodes() {
			dx, dy := n.X-cx, n.Y-cy
			if dx*dx+dy*dy <= cfg.CentroidRadius*cfg.CentroidRadius+1e-9 {
				e.centroidNodes = append(e.centroidNodes, n.ID)
			}
		}
		if len(e.centroidNodes) == 0 {
			e.centroidNodes = []nsim.NodeID{nw.NearestNode(cx, cy).ID}
		}
	}

	if err := e.compileRules(); err != nil {
		return nil, err
	}

	// Attach runtimes.
	e.rts = make([]*nodeRT, nw.Len())
	for _, n := range nw.Nodes() {
		rt := newNodeRT(e, n)
		e.rts[n.ID] = rt
		n.App = rt
	}
	return e, nil
}

// compileRules classifies each rule and builds the trigger index.
func (e *Engine) compileRules() error {
	for _, r := range e.prog.Rules {
		if len(r.Body) == 0 {
			continue // facts are injected at start
		}
		if r.HasAggregates() {
			continue // evaluated by TAG collection epochs
		}
		cr := &compiledRule{rule: r}
		for i, l := range r.Body {
			if l.Builtin {
				continue
			}
			if l.Negated {
				cr.negIdx = append(cr.negIdx, i)
			} else {
				cr.posIdx = append(cr.posIdx, i)
			}
		}
		// Mode: local if the head and every relational subgoal have a
		// declared placement.
		local := true
		if _, ok := e.placements[r.Head.PredKey()]; !ok {
			local = false
		}
		for _, l := range r.Body {
			if l.Builtin {
				continue
			}
			if _, ok := e.placements[l.PredKey()]; !ok {
				local = false
			}
		}
		if local {
			cr.mode = localMode
		} else {
			// Mixed placements are not supported: a placed predicate has
			// no GPA storage region, so a hash-mode sweep would miss it.
			for _, l := range r.Body {
				if l.Builtin {
					continue
				}
				if _, ok := e.placements[l.PredKey()]; ok {
					return fmt.Errorf("core: rule %d mixes placed predicate %s with hash-placed ones; declare placements for all of the rule's predicates or none", r.ID, l.PredKey())
				}
			}
			if _, ok := e.placements[r.Head.PredKey()]; ok {
				return fmt.Errorf("core: rule %d has a placed head %s but hash-placed body", r.ID, r.Head.PredKey())
			}
			cr.mode = hashMode
		}
		// Same-stage negation flags. Negations checked at finalize time
		// (local-mode rules and same-stage XY negations) re-derive their
		// bindings from the head tuple, so their variables must all
		// occur in the head.
		headVars := map[string]bool{}
		for _, v := range r.Head.Vars(nil) {
			headVars[v] = true
		}
		for _, ni := range cr.negIdx {
			same := e.sameXYComponent(r.Head.PredKey(), r.Body[ni].PredKey())
			cr.negSameStage = append(cr.negSameStage, same)
			if same || cr.mode == localMode {
				for _, v := range r.Body[ni].Vars(nil) {
					if !headVars[v] {
						return fmt.Errorf("core: rule %d: negated subgoal %s is checked at the head's home node, so its variable %s must appear in the head",
							r.ID, r.Body[ni], v)
					}
				}
			}
		}
		e.rules = append(e.rules, cr)
		for i, l := range r.Body {
			if l.Builtin {
				continue
			}
			e.triggers[l.PredKey()] = append(e.triggers[l.PredKey()], trigger{
				rule: cr, bodyIdx: i, negated: l.Negated,
			})
		}
	}
	// The LocalStorage scheme floods updates and joins at each node;
	// partial results cannot be accumulated coherently across a flood, so
	// it only supports two-stream positive rules. The same restriction
	// applies to band-mode PA on arbitrary topologies.
	if e.cfg.Scheme == gpa.LocalStorage || e.cfg.Scheme == gpa.Centroid ||
		(e.cfg.Scheme == gpa.Perpendicular && e.cfg.BandWidth > 0) {
		for _, cr := range e.rules {
			if cr.mode == hashMode && (len(cr.posIdx) > 2 || len(cr.negIdx) > 0) {
				return fmt.Errorf("core: flood-based join regions (local-storage or band-PA) support only two-stream positive joins (rule %d)", cr.rule.ID)
			}
		}
	}
	return nil
}

func (e *Engine) sameXYComponent(a, b string) bool {
	for _, w := range e.res.XY {
		_, hasA := w.StageArg[a]
		_, hasB := w.StageArg[b]
		if hasA && hasB {
			return true
		}
	}
	return false
}

// Start injects the program's facts (at their placement nodes, or their
// geographic home for hash-placed predicates). Call after nw.Finalize.
func (e *Engine) Start() {
	e.attachShards()
	for _, f := range e.prog.Facts() {
		f := f
		t := eval.Tuple{Pred: f.Head.PredKey(), Args: f.Head.Args}
		nodeID := e.homeFor(t)
		if e.prog.IsDerived(t.Pred) {
			e.nw.ScheduleAt(e.nw.Now(), func() {
				e.seedDerivedFact(f.ID, t, nodeID)
			})
			continue
		}
		e.Inject(nodeID, t)
	}
}

// seedDerivedFact seeds a program fact of a derived predicate as a
// nullary derivation at its home, so it shows up in the derived state
// like any rule-derived tuple. Shared by Start and the replay pass
// (which wipes derivation state and must re-seed).
func (e *Engine) seedDerivedFact(ruleID int, t eval.Tuple, nodeID nsim.NodeID) {
	rt := e.rts[nodeID]
	key := t.Key()
	if rt.derivs[key] == nil {
		rt.derivs[key] = make(map[string]bool)
	}
	dk := fmt.Sprintf("fact:r%d", ruleID)
	rt.derivs[key][dk] = true
	if e.prov != nil {
		now := int64(e.nw.Now())
		e.prov.Add(provenance.Record{
			Rule: int32(ruleID), Producer: int32(nodeID), Settler: int32(nodeID),
			SentAt: now, SettledAt: now, Head: key, DerivKey: dk,
		}, nil)
	}
	rt.derivedLive[key] = t
	rt.derivedIDs[key] = rt.generate(t, nil)
}

// homeFor returns the node where tuple t should originate: its placement
// node if declared, else its geographic-hash home.
func (e *Engine) homeFor(t eval.Tuple) nsim.NodeID {
	if pl, ok := e.placements[t.Pred]; ok {
		if id, ok2 := e.nodeTerms[t.Args[pl.Arg].Key()]; ok2 {
			return id
		}
	}
	return e.hasher.Home(e.nw, t.Key()).ID
}

// validateInject rejects the misuse cases the runtime previously
// accepted silently (or crashed on later): out-of-range nodes,
// non-ground tuples, derived predicates (those are produced by rules,
// never injected), unknown predicates, and arity mismatches against
// the program's declarations. Each failure wraps the matching
// sentinel (ErrBadNode, ErrNotGround, ErrDerivedPredicate,
// ErrUnknownPredicate, ErrArity) for errors.Is dispatch; the messages
// are unchanged.
func (e *Engine) validateInject(node nsim.NodeID, t eval.Tuple) error {
	if int(node) < 0 || int(node) >= e.nw.Len() {
		return validationErrorf(ErrBadNode, "core: inject %s: node %d out of range [0, %d)", t, node, e.nw.Len())
	}
	for _, a := range t.Args {
		if !a.Ground() {
			return validationErrorf(ErrNotGround, "core: inject %s: argument %s is not ground", t, a)
		}
	}
	if e.prog.IsDerived(t.Pred) {
		return validationErrorf(ErrDerivedPredicate, "core: inject %s: %s is a derived predicate (derived tuples come from rules, not injection)", t, t.Pred)
	}
	if !e.knownPreds[t.Pred] {
		name := t.Name() + "/"
		for p := range e.knownPreds {
			if len(p) > len(name) && p[:len(name)] == name {
				return validationErrorf(ErrArity, "core: inject %s: arity mismatch (program declares %s, got %s)", t, p, t.Pred)
			}
		}
		return validationErrorf(ErrUnknownPredicate, "core: inject %s: predicate %s not mentioned by the program", t, t.Pred)
	}
	return nil
}

// Validate runs injection validation without scheduling anything: the
// same checks, sentinels and messages Inject/InjectAt/InjectDeleteAt
// apply. The serving layer's write batching validates at enqueue time
// so a deferred apply can never fail; the checks depend only on the
// immutable program and topology, so a tuple that validates now still
// validates when the batch is applied.
func (e *Engine) Validate(node nsim.NodeID, t eval.Tuple) error {
	return e.validateInject(node, t)
}

// Inject generates base tuple t at the given node (scheduled
// immediately). Returns an error — without scheduling anything — if
// the injection fails validation (see validateInject).
func (e *Engine) Inject(node nsim.NodeID, t eval.Tuple) error {
	if err := e.validateInject(node, t); err != nil {
		return err
	}
	e.nw.ScheduleAt(e.nw.Now(), func() {
		e.rts[node].generate(t, nil)
	})
	return nil
}

// InjectAt schedules the generation at an absolute simulation time.
// Validation errors are reported immediately, before scheduling.
func (e *Engine) InjectAt(at nsim.Time, node nsim.NodeID, t eval.Tuple) error {
	if err := e.validateInject(node, t); err != nil {
		return err
	}
	e.nw.ScheduleAt(at, func() {
		e.rts[node].generate(t, nil)
	})
	return nil
}

// InjectDelete deletes a previously injected base tuple; the deletion
// originates at the same source node (per the paper, deletion happens
// only at the source).
func (e *Engine) InjectDelete(node nsim.NodeID, t eval.Tuple) error {
	if err := e.validateInject(node, t); err != nil {
		return err
	}
	id, ok := e.baseIDs[t.Key()]
	if !ok {
		return fmt.Errorf("core: deleting unknown base tuple %s", t)
	}
	e.nw.ScheduleAt(e.nw.Now(), func() {
		e.rts[node].generate(t, &id)
	})
	return nil
}

// InjectDeleteAt schedules the deletion at an absolute time; the tuple
// must have been generated by then (a stamp still unknown when the
// deletion fires is skipped, since validation cannot see the future).
func (e *Engine) InjectDeleteAt(at nsim.Time, node nsim.NodeID, t eval.Tuple) error {
	if err := e.validateInject(node, t); err != nil {
		return err
	}
	e.nw.ScheduleAt(at, func() {
		id, ok := e.baseIDs[t.Key()]
		if !ok {
			return
		}
		e.rts[node].generate(t, &id)
	})
	return nil
}

// Derived returns the live derived tuples of predKey across the network
// (union of home-node states), in canonical order.
func (e *Engine) Derived(predKey string) []eval.Tuple {
	seen := map[string]eval.Tuple{}
	for _, rt := range e.rts {
		for k, t := range rt.derivedLive {
			if t.Pred == predKey {
				seen[k] = t
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]eval.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// DerivedDB snapshots all derived predicates into a database for oracle
// comparison.
func (e *Engine) DerivedDB() *eval.Database {
	db := eval.NewDatabase()
	for _, rt := range e.rts {
		for _, t := range rt.derivedLive {
			db.Insert(t)
		}
	}
	return db
}

// StoredReplicas returns the total replica entries held at node id (the
// E9 memory metric).
func (e *Engine) StoredReplicas(id nsim.NodeID) int { return e.rts[id].store.TotalCount() }

// DerivationEntries returns the derivation records held at node id.
func (e *Engine) DerivationEntries(id nsim.NodeID) int {
	n := 0
	for _, set := range e.rts[id].derivs {
		n += len(set)
	}
	return n
}

// MaxMemoryTuples returns max and average per-node stored tuples
// (replicas + derivations).
func (e *Engine) MaxMemoryTuples() (max int, avg float64) {
	total := 0
	for _, n := range e.nw.Nodes() {
		m := e.StoredReplicas(n.ID) + e.DerivationEntries(n.ID)
		total += m
		if m > max {
			max = m
		}
	}
	return max, float64(total) / float64(e.nw.Len())
}

// Analysis exposes the program analysis.
func (e *Engine) Analysis() *analysis.Result { return e.res }

// Network exposes the underlying network.
func (e *Engine) Network() *nsim.Network { return e.nw }

// centroidFor picks the region node a tuple is stored at (hash-spread
// over the centroid region).
func (e *Engine) centroidFor(key string) *nsim.Node {
	h := 0
	for _, c := range key {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return e.nw.Node(e.centroidNodes[h%len(e.centroidNodes)])
}

// retention computes the replica lifetime of Section IV-B:
// (τs+τc) + τj + (τw+τc); unbounded windows never expire.
func (e *Engine) retention(predKey string) int64 {
	w := e.windows[predKey]
	if w == 0 {
		return 0
	}
	return int64(e.cfg.TauS+2*e.cfg.TauC+e.cfg.TauJ) + w
}

// candSettle bounds how long after an update's timestamp its candidates
// can still be in flight: join-phase start (τs+τc) + sweep (τj) + result
// routing (τj) + clock skew. Applying every candidate at
// updateTS + candSettle therefore applies candidates in update-timestamp
// order — the distributed analogue of Theorem 3's "process updates in
// the order of their local timestamps".
func (e *Engine) candSettle() nsim.Time {
	return e.cfg.TauS + 2*e.cfg.TauJ + 2*e.cfg.TauC
}

// finalizeDeadline computes the local time at which a candidate with the
// given update stamp and head predicate must be applied; same-stage XY
// predicates are staggered by their evaluation-order priority.
func (e *Engine) finalizeDeadline(updateTS int64, predKey string) nsim.Time {
	return nsim.Time(updateTS) + e.candSettle() +
		e.cfg.FinalizeGap*nsim.Time(1+e.finalizePrio[predKey])
}

// sizeOfTuple estimates the wire size of a tuple in bytes.
func sizeOfTuple(t eval.Tuple) int {
	n := 4 // predicate tag
	for _, a := range t.Args {
		n += sizeOfTerm(a)
	}
	return n
}

func sizeOfTerm(t ast.Term) int {
	switch t.Kind {
	case ast.KindInt, ast.KindFloat:
		return 4
	case ast.KindString, ast.KindSymbol:
		return 2 + len(t.Str)
	case ast.KindVar:
		return 2
	case ast.KindCompound:
		n := 2
		for _, a := range t.Args {
			n += sizeOfTerm(a)
		}
		return n
	}
	return 2
}

// String summarizes the compiled program.
func (e *Engine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d rules, scheme=%s\n", len(e.rules), e.cfg.Scheme)
	for _, cr := range e.rules {
		mode := "hash"
		if cr.mode == localMode {
			mode = "local"
		}
		fmt.Fprintf(&b, "  rule %d [%s]: %s\n", cr.rule.ID, mode, cr.rule)
	}
	return b.String()
}
