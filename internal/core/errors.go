package core

import (
	"errors"
	"fmt"
)

// Validation sentinels. Every validation failure returned by the
// injection entry points (Inject/InjectAt/InjectDelete/InjectDeleteAt)
// and the goal front door (ParseGoal, Cluster.Query, serve.Session)
// wraps exactly one of these, so callers dispatch with errors.Is
// instead of grepping message text:
//
//	if errors.Is(err, core.ErrUnknownPredicate) { ... }
//
// The human-readable messages are unchanged from the stringly era —
// the sentinel rides along underneath via ValidationError.
var (
	// ErrBadNode marks a node ID outside [0, n).
	ErrBadNode = errors.New("node out of range")
	// ErrNotGround marks a tuple with an unbound variable.
	ErrNotGround = errors.New("tuple not ground")
	// ErrDerivedPredicate marks an attempt to inject a derived
	// predicate (derived tuples come from rules, never injection).
	ErrDerivedPredicate = errors.New("derived predicate")
	// ErrUnknownPredicate marks a predicate the program never mentions.
	ErrUnknownPredicate = errors.New("unknown predicate")
	// ErrArity marks a predicate name the program declares at a
	// different arity.
	ErrArity = errors.New("arity mismatch")
	// ErrBasePredicate marks a point-query goal naming a base
	// predicate — queries answer derived predicates; base facts are
	// what you inject.
	ErrBasePredicate = errors.New("base predicate")
	// ErrBadGoal marks a goal string that is not a single positive
	// relational literal.
	ErrBadGoal = errors.New("malformed goal")
)

// ValidationError is a validation failure carrying its sentinel: the
// message is exactly what the stringly fmt.Errorf used to say, and
// Unwrap exposes the Kind for errors.Is / errors.As matching.
type ValidationError struct {
	// Kind is one of the package sentinels (ErrBadNode, ...).
	Kind error
	msg  string
}

// Error returns the full human-readable message.
func (e *ValidationError) Error() string { return e.msg }

// Unwrap exposes the sentinel so errors.Is(err, core.ErrArity) works.
func (e *ValidationError) Unwrap() error { return e.Kind }

// validationErrorf builds a ValidationError with a formatted message.
func validationErrorf(kind error, format string, args ...interface{}) error {
	return &ValidationError{Kind: kind, msg: fmt.Sprintf(format, args...)}
}
