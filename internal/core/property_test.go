package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
	"repro/internal/topo"
)

// The central correctness property (Theorems 1-3): on ANY timeline of
// insertions and deletions, injected at arbitrary nodes with arbitrary
// (bounded-skew) clocks, the engine's final derived state equals the
// centralized oracle over the surviving base facts.
func TestPropertyRandomTimelineMatchesOracle(t *testing.T) {
	type workload struct {
		name string
		src  string
		gen  func(r *rand.Rand, i int) eval.Tuple
	}
	workloads := []workload{
		{
			name: "join",
			src: `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`,
			gen: func(r *rand.Rand, i int) eval.Tuple {
				if r.Intn(2) == 0 {
					return eval.NewTuple("ra", ast.Int64(int64(i)), ast.Int64(int64(r.Intn(5))))
				}
				return eval.NewTuple("rb", ast.Int64(int64(r.Intn(5))), ast.Int64(int64(i)))
			},
		},
		{
			name: "negation",
			src: `
.base veh/3.
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
`,
			gen: func(r *rand.Rand, i int) eval.Tuple {
				kind := "enemy"
				if r.Intn(2) == 0 {
					kind = "friendly"
				}
				return eval.NewTuple("veh", ast.Symbol(kind),
					ast.Compound("loc", ast.Int64(int64(r.Intn(6))), ast.Int64(int64(r.Intn(6)))),
					ast.Int64(int64(r.Intn(2))))
			},
		},
		{
			name: "recursion",
			src: `
.base edge/2.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`,
			gen: func(r *rand.Rand, i int) eval.Tuple {
				// DAG edges: locally non-recursive derivations.
				a := r.Intn(5)
				return eval.NewTuple("edge", ast.Int64(int64(a)), ast.Int64(int64(a+1+r.Intn(2))))
			},
		},
	}

	for _, w := range workloads {
		for seed := int64(0); seed < 3; seed++ {
			// seed 2 additionally runs under 6% loss with link ARQ: the
			// retransmissions make delivery near-certain, so Theorem 3's
			// bounded-delay assumption still holds and the oracle
			// equivalence must survive.
			simCfg := nsim.Config{Seed: seed, MaxSkew: 6}
			if seed == 2 {
				simCfg.LossRate = 0.06
				simCfg.Retries = 6
			}
			t.Run(fmt.Sprintf("%s/seed%d", w.name, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed*101 + 7))
				e, nw := buildGrid(t, 6, w.src,
					Config{Scheme: gpa.Perpendicular},
					simCfg)

				live := map[string]eval.Tuple{}
				origin := map[string]nsim.NodeID{}
				at := nsim.Time(0)
				// Space the ops so each settles: the oracle equivalence is
				// about the *final* state; ops are still concurrent within
				// each other's storage/join phases because deltas overlap.
				for i := 0; i < 25; i++ {
					at += nsim.Time(r.Intn(400))
					if len(live) > 0 && r.Intn(100) < 30 {
						keys := make([]string, 0, len(live))
						for k := range live {
							keys = append(keys, k)
						}
						k := keys[r.Intn(len(keys))]
						e.InjectDeleteAt(at, origin[k], live[k])
						delete(live, k)
						continue
					}
					tup := w.gen(r, i)
					if _, dup := live[tup.Key()]; dup {
						continue
					}
					node := nsim.NodeID(r.Intn(nw.Len()))
					live[tup.Key()] = tup
					origin[tup.Key()] = node
					e.InjectAt(at, node, tup)
				}
				nw.Run(0)

				var base []eval.Tuple
				for _, tup := range live {
					base = append(base, tup)
				}
				oracleCompare(t, e, w.src, base, deriveds(w.src)...)
			})
		}
	}
}

// deriveds lists derived predicate keys of a source program.
func deriveds(src string) []string {
	switch {
	case contains(src, "uncov"):
		return []string{"cov/2", "uncov/2"}
	case contains(src, "path"):
		return []string{"path/2"}
	default:
		return []string{"out/2"}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// With link-layer ARQ the join stays complete under 10% loss — the E7
// robustness claim as a test.
func TestLossWithARQStaysComplete(t *testing.T) {
	e, nw := buildGrid(t, 6, joinSrc,
		Config{Scheme: gpa.Perpendicular},
		nsim.Config{Seed: 3, LossRate: 0.1, Retries: 4})
	for i := 0; i < 8; i++ {
		e.InjectAt(nsim.Time(i*11), nsim.NodeID((i*7)%nw.Len()),
			eval.NewTuple("ra", ast.Int64(int64(i)), ast.Int64(int64(i))))
		e.InjectAt(nsim.Time(i*11+5), nsim.NodeID((i*13+2)%nw.Len()),
			eval.NewTuple("rb", ast.Int64(int64(i)), ast.Int64(int64(i))))
	}
	nw.Run(0)
	if n := len(e.Derived("out/2")); n != 8 {
		t.Errorf("results under loss+ARQ = %d, want 8", n)
	}
}

// logicH (the paper's original Example 3 program) distributed: the full
// 3-ary tree edges must be exactly the BFS tree levels.
func TestLogicHDistributed(t *testing.T) {
	const src = `
.base g/2.
.store g/2 at 0 hops 1.
.store h/3 at 1 hops 1.
.store hp/2 at 0.
h(n0, n0, 0).
h(n0, X, 1) :- g(n0, X).
hp(Y, D1) :- h(W, Y, Dp), D1 = D + 1, D1 > Dp, h(V, X, D), g(X, Y).
h(X, Y, D1) :- g(X, Y), h(V, X, D), D1 = D + 1, NOT hp(Y, D1).
`
	m := 4
	nw := topo.Grid(m, nsim.Config{Seed: 21})
	e, err := New(nw, mustProg(t, src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Finalize()
	base := injectGridEdges(e, nw)
	e.Start()
	nw.Run(0)
	oracleCompare(t, e, src, base, "h/3")

	// Every node enters the tree exactly at its BFS depth.
	depth := map[string]int64{}
	for _, h := range e.Derived("h/3") {
		node := h.Args[1].Str
		if d, ok := depth[node]; !ok || h.Args[2].Int < d {
			depth[node] = h.Args[2].Int
		}
	}
	for _, h := range e.Derived("h/3") {
		if h.Args[2].Int != depth[h.Args[1].Str] {
			t.Errorf("non-shortest edge %v", h)
		}
	}
	var id int
	for node, d := range depth {
		fmt.Sscanf(node, "n%d", &id)
		p, q := topo.GridCoords(m, nsim.NodeID(id))
		if d != int64(p+q) {
			t.Errorf("depth(%s) = %d, want %d", node, d, p+q)
		}
	}
}

// Band-mode PA on a random geometric topology: two-stream joins complete.
func TestBandPAOnRandomTopology(t *testing.T) {
	nw, err := topo.RandomGeometric(45, 9, 2.7, 31, nsim.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(nw, mustProg(t, joinSrc), Config{Scheme: gpa.Perpendicular, BandWidth: 4.0})
	if err != nil {
		t.Fatal(err)
	}
	nw.Finalize()
	e.Start()
	var base []eval.Tuple
	for i := 0; i < 6; i++ {
		a := eval.NewTuple("ra", ast.Int64(int64(i)), ast.Int64(int64(i)))
		b := eval.NewTuple("rb", ast.Int64(int64(i)), ast.Int64(int64(i+100)))
		base = append(base, a, b)
		e.InjectAt(nsim.Time(i*9), nsim.NodeID((i*7)%nw.Len()), a)
		e.InjectAt(nsim.Time(i*9+4), nsim.NodeID((i*11+3)%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, joinSrc, base, "out/2")
}

// Band-mode rejects programs beyond two-stream positive joins.
func TestBandPARejectsComplexRules(t *testing.T) {
	nw, err := topo.RandomGeometric(30, 8, 2.7, 33, nsim.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(nw, mustProg(t, threeWaySrc), Config{Scheme: gpa.Perpendicular, BandWidth: 4.0})
	if err == nil {
		t.Fatal("three-way join should be rejected in band mode")
	}
}

// Dead nodes along a row: storage still replicates around them thanks to
// greedy-avoid detours (the fault-tolerance motivation of Section III-A).
func TestJoinSurvivesDeadNode(t *testing.T) {
	e, nw := buildGrid(t, 6, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 10})
	// Kill a node that sits on the storage row of (1,2) and the join
	// column of (4,3).
	nw.Node(topo.GridID(6, 3, 2)).Down = true
	e.InjectAt(0, topo.GridID(6, 1, 2), eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)))
	e.InjectAt(5, topo.GridID(6, 4, 3), eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)))
	nw.Run(0)
	if n := len(e.Derived("out/2")); n != 1 {
		t.Errorf("join across dead node: %d results", n)
	}
}

// The result log of a .query predicate records inserts and deletes in
// order with node and time attribution.
func TestResultLogOrdering(t *testing.T) {
	e, nw := buildGrid(t, 5, `
.base s/1.
d(X) :- s(X).
.query d/1.
`, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 12})
	tup := eval.NewTuple("s", ast.Int64(1))
	e.InjectAt(0, 3, tup)
	e.InjectDeleteAt(4000, 3, tup)
	nw.Run(0)
	if len(e.ResultLog) != 2 {
		t.Fatalf("log = %v", e.ResultLog)
	}
	if !e.ResultLog[0].Insert || e.ResultLog[1].Insert {
		t.Error("log order wrong")
	}
	if e.ResultLog[0].At >= e.ResultLog[1].At {
		t.Error("timestamps not increasing")
	}
}

// Multiple rules with the same head predicate: derivations carry the
// rule ID, so deleting one rule's support keeps the other's alive.
func TestMultipleRulesSameHeadIndependentDerivations(t *testing.T) {
	src := `
.base p/1.
.base q/1.
r(X) :- p(X).
r(X) :- q(X).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 13})
	pt := eval.NewTuple("p", ast.Int64(1))
	qt := eval.NewTuple("q", ast.Int64(1))
	e.InjectAt(0, 2, pt)
	e.InjectAt(5, 9, qt)
	e.InjectDeleteAt(4000, 2, pt)
	nw.Run(0)
	// r(1) still derivable from q(1).
	if n := len(e.Derived("r/1")); n != 1 {
		t.Errorf("r = %v", e.Derived("r/1"))
	}
	e.InjectDeleteAt(int64Time(nw)+100, 9, qt)
	nw.Run(0)
	if n := len(e.Derived("r/1")); n != 0 {
		t.Errorf("r should be gone: %v", e.Derived("r/1"))
	}
}

func int64Time(nw *nsim.Network) nsim.Time { return nw.Now() }
