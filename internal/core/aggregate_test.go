package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

// TAG-style in-network aggregation: the sink collects min/count/avg over
// a distributed stream through a depth-staggered convergecast.
func TestTAGAggregation(t *testing.T) {
	src := `
.base reading/2.
coldest(min<T>) :- reading(N, T).
n(count<N>) :- reading(N, T).
mean(avg<T>) :- reading(N, T).
grouped(N, max<T>) :- reading(N, T).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 19})
	// One reading per node: value = node id + 10; node 7 reports twice.
	for _, n := range nw.Nodes() {
		e.InjectAt(nsim.Time(int(n.ID)*3), n.ID,
			eval.NewTuple("reading", ast.Symbol(fmt.Sprintf("n%d", n.ID)), ast.Int64(int64(n.ID)+10)))
	}
	e.InjectAt(200, 7, eval.NewTuple("reading", ast.Symbol("n7"), ast.Int64(99)))
	if err := e.CollectAggregateAt(3000, "coldest/1", 0); err != nil {
		t.Fatal(err)
	}
	if err := e.CollectAggregateAt(4000, "n/1", 0); err != nil {
		t.Fatal(err)
	}
	if err := e.CollectAggregateAt(5000, "mean/1", 12); err != nil {
		t.Fatal(err)
	}
	if err := e.CollectAggregateAt(6000, "grouped/2", 3); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)

	cold := e.AggregateResult("coldest/1")
	if len(cold) != 1 || cold[0].Args[0].Int != 10 {
		t.Errorf("coldest = %v", cold)
	}
	cnt := e.AggregateResult("n/1")
	if len(cnt) != 1 || cnt[0].Args[0].Int != 26 {
		t.Errorf("count = %v (want 26 readings)", cnt)
	}
	mean := e.AggregateResult("mean/1")
	// sum = (10..34) + 99 = 550 + 99 = 649 over 26 readings.
	if len(mean) != 1 || mean[0].Args[0].Float != 649.0/26.0 {
		t.Errorf("mean = %v", mean)
	}
	grouped := e.AggregateResult("grouped/2")
	if len(grouped) != 25 {
		t.Fatalf("grouped = %d groups, want 25", len(grouped))
	}
	for _, g := range grouped {
		if g.Args[0].Str == "n7" && g.Args[1].Int != 99 {
			t.Errorf("max for n7 = %v", g.Args[1])
		}
	}
}

// The TAG collection matches the centralized evaluator's multiset
// aggregate semantics (including builtin filters in the body).
func TestTAGMatchesOracleAggregates(t *testing.T) {
	src := `
.base reading/2.
stats(N, max<T>) :- reading(N, T), T > 5.
`
	e, nw := buildGrid(t, 4, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 20})
	var base []eval.Tuple
	for i := 0; i < 10; i++ {
		tup := eval.NewTuple("reading", ast.Symbol(fmt.Sprintf("g%d", i%3)), ast.Int64(int64(i)))
		base = append(base, tup)
		e.InjectAt(nsim.Time(i*5), nsim.NodeID(i%nw.Len()), tup)
	}
	if err := e.CollectAggregateAt(2000, "stats/2", 0); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)

	ev, err := eval.New(mustProg(t, src), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	got := e.AggregateResult("stats/2")
	wantT := want.Tuples("stats/2")
	if len(got) != len(wantT) {
		t.Fatalf("got %d groups, oracle %d\ngot: %v\nwant: %v", len(got), len(wantT), got, wantT)
	}
	gotByKey := map[string]bool{}
	for _, g := range got {
		gotByKey[g.Key()] = true
	}
	for _, w := range wantT {
		if !gotByKey[w.Key()] {
			t.Errorf("missing group %v", w)
		}
	}
}

// Aggregation over a DERIVED stream: TAG collects from the home nodes
// where derived tuples live.
func TestTAGOverDerivedStream(t *testing.T) {
	src := `
.base temp/2.
hot(N, T) :- temp(N, T), T > 90.
nhot(count<N>) :- hot(N, T).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 21})
	for i := 0; i < 10; i++ {
		v := int64(80 + i*3) // 80..107; values > 90 from i >= 4
		e.InjectAt(nsim.Time(i*7), nsim.NodeID(i*2),
			eval.NewTuple("temp", ast.Symbol(fmt.Sprintf("n%d", i*2)), ast.Int64(v)))
	}
	if err := e.CollectAggregateAt(4000, "nhot/1", 0); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	got := e.AggregateResult("nhot/1")
	if len(got) != 1 || got[0].Args[0].Int != 6 {
		t.Errorf("nhot = %v (want 6)", got)
	}
}

// Aggregation costs messages (build flood + partials) accounted under
// their own kinds; a second epoch reflects newer data.
func TestTAGMessageAccountingAndReepoch(t *testing.T) {
	src := `
.base reading/2.
total(sum<T>) :- reading(N, T).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 22})
	for i := 0; i < 5; i++ {
		e.InjectAt(nsim.Time(i*3), nsim.NodeID(i*5),
			eval.NewTuple("reading", ast.Symbol(fmt.Sprintf("n%d", i)), ast.Int64(int64(i))))
	}
	if err := e.CollectAggregateAt(2000, "total/1", 0); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	if nw.KindCounts[kindAggBuild] == 0 {
		t.Error("no tree-build messages")
	}
	if nw.KindCounts[kindAggPartial] == 0 {
		t.Error("no partial-state messages")
	}
	got := e.AggregateResult("total/1")
	if len(got) != 1 || got[0].Args[0].Int != 0+1+2+3+4 {
		t.Errorf("total = %v", got)
	}
	// New data, new epoch.
	e.InjectAt(nw.Now()+10, 3, eval.NewTuple("reading", ast.Symbol("late"), ast.Int64(100)))
	if err := e.CollectAggregateAt(nw.Now()+3000, "total/1", 0); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	got = e.AggregateResult("total/1")
	if len(got) != 1 || got[0].Args[0].Int != 110 {
		t.Errorf("second epoch total = %v (want 110)", got)
	}
}

func TestCollectAggregateUnknownPredicate(t *testing.T) {
	e, _ := buildGrid(t, 3, `.base s/1.
d(X) :- s(X).`, Config{}, nsim.Config{Seed: 23})
	if err := e.CollectAggregateAt(0, "nosuch/1", 0); err == nil {
		t.Fatal("unknown aggregate predicate should error")
	}
}
