package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
	"repro/internal/gpa"
	"repro/internal/nsim"
	"repro/internal/topo"
)

func mustProg(t testing.TB, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// buildGrid returns an engine over an m×m grid.
func buildGrid(t testing.TB, m int, src string, cfg Config, simCfg nsim.Config) (*Engine, *nsim.Network) {
	t.Helper()
	nw := topo.Grid(m, simCfg)
	e, err := New(nw, mustProg(t, src), cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	nw.Finalize()
	e.Start()
	return e, nw
}

// oracleCompare checks that the engine's derived state matches the
// centralized evaluator over the surviving base facts.
func oracleCompare(t *testing.T, e *Engine, src string, base []eval.Tuple, preds ...string) {
	t.Helper()
	ev, err := eval.New(mustProg(t, src), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	got := e.DerivedDB()
	for _, pred := range preds {
		w := want.Tuples(pred)
		g := got.Tuples(pred)
		if len(w) != len(g) {
			t.Fatalf("%s: engine has %d tuples, oracle %d\nengine: %v\noracle: %v",
				pred, len(g), len(w), g, w)
		}
		for i := range w {
			if !w[i].Equal(g[i]) {
				t.Fatalf("%s[%d]: engine %v, oracle %v", pred, i, g[i], w[i])
			}
		}
	}
}

const joinSrc = `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`

func TestTwoStreamJoinPA(t *testing.T) {
	e, nw := buildGrid(t, 6, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 1})
	base := []eval.Tuple{
		eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)),
		eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)),
		eval.NewTuple("ra", ast.Int64(7), ast.Int64(8)),
		eval.NewTuple("rb", ast.Int64(8), ast.Int64(9)),
		eval.NewTuple("rb", ast.Int64(5), ast.Int64(6)), // no partner
	}
	// Spread generation across distinct nodes and times.
	for i, b := range base {
		e.InjectAt(nsim.Time(i*3), nsim.NodeID((i*7)%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, joinSrc, base, "out/2")
}

func TestTwoStreamJoinAllSchemes(t *testing.T) {
	for _, scheme := range []gpa.Scheme{gpa.Perpendicular, gpa.NaiveBroadcast, gpa.LocalStorage, gpa.Centralized, gpa.Centroid} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, nw := buildGrid(t, 5, joinSrc, Config{Scheme: scheme, Server: 12}, nsim.Config{Seed: 2})
			var base []eval.Tuple
			for i := 0; i < 6; i++ {
				ra := eval.NewTuple("ra", ast.Int64(int64(i%3)), ast.Int64(int64(i)))
				rb := eval.NewTuple("rb", ast.Int64(int64(i)), ast.Int64(int64(i*10)))
				base = append(base, ra, rb)
				e.InjectAt(nsim.Time(i*5), nsim.NodeID((2*i)%nw.Len()), ra)
				e.InjectAt(nsim.Time(i*5+2), nsim.NodeID((2*i+9)%nw.Len()), rb)
			}
			nw.Run(0)
			oracleCompare(t, e, joinSrc, base, "out/2")
		})
	}
}

func TestSimultaneousInsertions(t *testing.T) {
	// All tuples injected at the same instant at different nodes
	// (Theorem 1's "possibly simultaneous" case).
	e, nw := buildGrid(t, 6, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 3, MaxSkew: 6})
	var base []eval.Tuple
	for i := 0; i < 8; i++ {
		tup := eval.NewTuple("ra", ast.Int64(int64(i%4)), ast.Int64(int64(i)))
		tup2 := eval.NewTuple("rb", ast.Int64(int64(i)), ast.Int64(int64(i)))
		base = append(base, tup, tup2)
		e.InjectAt(0, nsim.NodeID(i), tup)
		e.InjectAt(0, nsim.NodeID(nw.Len()-1-i), tup2)
	}
	nw.Run(0)
	oracleCompare(t, e, joinSrc, base, "out/2")
}

const uncovSrc = `
.base veh/3.
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
.query uncov/2.
`

func vehT(kind string, x, y, ts int64) eval.Tuple {
	return eval.NewTuple("veh", ast.Symbol(kind),
		ast.Compound("loc", ast.Int64(x), ast.Int64(y)), ast.Int64(ts))
}

func TestNegationUncovered(t *testing.T) {
	e, nw := buildGrid(t, 6, uncovSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 4})
	base := []eval.Tuple{
		vehT("enemy", 0, 0, 1),
		vehT("friendly", 3, 4, 1), // covers the first enemy
		vehT("enemy", 50, 50, 1),  // uncovered
	}
	for i, b := range base {
		e.InjectAt(nsim.Time(i*4), nsim.NodeID(i*11%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, uncovSrc, base, "cov/2", "uncov/2")
	// The uncovered alert is for the far enemy.
	uncov := e.Derived("uncov/2")
	if len(uncov) != 1 || !uncov[0].Args[0].Equal(ast.Compound("loc", ast.Int64(50), ast.Int64(50))) {
		t.Errorf("uncov = %v", uncov)
	}
}

func TestNegationRetractionOnLateCover(t *testing.T) {
	// Enemy first (uncov derived), friendly arrives much later: the
	// cov insertion must retract uncov (Section IV-B).
	e, nw := buildGrid(t, 6, uncovSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 5})
	enemy := vehT("enemy", 0, 0, 1)
	friendly := vehT("friendly", 3, 4, 1)
	e.InjectAt(0, 3, enemy)
	e.InjectAt(4000, 30, friendly)
	nw.Run(0)
	oracleCompare(t, e, uncovSrc, []eval.Tuple{enemy, friendly}, "cov/2", "uncov/2")
	if n := len(e.Derived("uncov/2")); n != 0 {
		t.Errorf("uncov should be retracted, have %d", n)
	}
	// The result log must show the insert followed by the delete.
	var events []string
	for _, ev := range e.ResultLog {
		events = append(events, fmt.Sprintf("%v/%v", ev.Tuple.Name(), ev.Insert))
	}
	if len(e.ResultLog) != 2 || !e.ResultLog[0].Insert || e.ResultLog[1].Insert {
		t.Errorf("result log = %v", events)
	}
}

func TestDeletionFromPositiveStream(t *testing.T) {
	e, nw := buildGrid(t, 5, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 6})
	ra := eval.NewTuple("ra", ast.Int64(1), ast.Int64(2))
	rb1 := eval.NewTuple("rb", ast.Int64(2), ast.Int64(3))
	rb2 := eval.NewTuple("rb", ast.Int64(2), ast.Int64(4))
	e.InjectAt(0, 2, ra)
	e.InjectAt(5, 9, rb1)
	e.InjectAt(9, 17, rb2)
	e.InjectDeleteAt(5000, 9, rb1)
	nw.Run(0)
	oracleCompare(t, e, joinSrc, []eval.Tuple{ra, rb2}, "out/2")
	out := e.Derived("out/2")
	if len(out) != 1 || out[0].Args[1].Int != 4 {
		t.Errorf("out = %v", out)
	}
}

func TestDeletionFromNegatedStreamReinstates(t *testing.T) {
	e, nw := buildGrid(t, 6, uncovSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 7})
	enemy := vehT("enemy", 0, 0, 1)
	friendly := vehT("friendly", 3, 4, 1)
	e.InjectAt(0, 3, enemy)
	e.InjectAt(0, 30, friendly)
	// After everything settles, the friendly vehicle leaves.
	e.InjectDeleteAt(8000, 30, friendly)
	nw.Run(0)
	oracleCompare(t, e, uncovSrc, []eval.Tuple{enemy}, "cov/2", "uncov/2")
	if n := len(e.Derived("uncov/2")); n != 1 {
		t.Errorf("uncov should be reinstated, have %d", n)
	}
}

const threeWaySrc = `
.base ra/2.
.base rb/2.
.base rc/2.
out3(X, W) :- ra(X, Y), rb(Y, Z), rc(Z, W).
`

func TestThreeStreamJoinOnePass(t *testing.T) {
	e, nw := buildGrid(t, 6, threeWaySrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 8})
	var base []eval.Tuple
	for i := int64(0); i < 3; i++ {
		a := eval.NewTuple("ra", ast.Int64(i), ast.Int64(i+1))
		b := eval.NewTuple("rb", ast.Int64(i+1), ast.Int64(i+2))
		c := eval.NewTuple("rc", ast.Int64(i+2), ast.Int64(i+3))
		base = append(base, a, b, c)
		e.InjectAt(nsim.Time(i*7), nsim.NodeID(int(i*3)%nw.Len()), a)
		e.InjectAt(nsim.Time(i*7+2), nsim.NodeID(int(i*5+7)%nw.Len()), b)
		e.InjectAt(nsim.Time(i*7+4), nsim.NodeID(int(i*9+20)%nw.Len()), c)
	}
	nw.Run(0)
	oracleCompare(t, e, threeWaySrc, base, "out3/2")
	if len(e.Derived("out3/2")) != 3 {
		t.Errorf("out3 = %v", e.Derived("out3/2"))
	}
}

func TestThreeStreamJoinMultiPass(t *testing.T) {
	e, nw := buildGrid(t, 6, threeWaySrc, Config{Scheme: gpa.Perpendicular, MultiPass: true}, nsim.Config{Seed: 9})
	var base []eval.Tuple
	for i := int64(0); i < 3; i++ {
		a := eval.NewTuple("ra", ast.Int64(i), ast.Int64(i+1))
		b := eval.NewTuple("rb", ast.Int64(i+1), ast.Int64(i+2))
		c := eval.NewTuple("rc", ast.Int64(i+2), ast.Int64(i+3))
		base = append(base, a, b, c)
		e.InjectAt(nsim.Time(i*7), nsim.NodeID(int(i*3)%nw.Len()), a)
		e.InjectAt(nsim.Time(i*7+2), nsim.NodeID(int(i*5+7)%nw.Len()), b)
		e.InjectAt(nsim.Time(i*7+4), nsim.NodeID(int(i*9+20)%nw.Len()), c)
	}
	nw.Run(0)
	oracleCompare(t, e, threeWaySrc, base, "out3/2")
}

// The logicJ shortest-path-tree program with node placements (Section V).
const logicJSrc = `
.base g/2.
.store g/2 at 0 hops 1.
.store j/2 at 0 hops 1.
.store jp/2 at 0.
jp(Y, D1) :- j(Y, Dp), D1 = D + 1, D1 > Dp, j(X, D), g(X, Y).
j(Y, D1) :- g(X, Y), j(X, D), D1 = D + 1, NOT jp(Y, D1).
.query j/2.
`

// injectGridEdges injects g facts for the grid adjacency at each node.
func injectGridEdges(e *Engine, nw *nsim.Network) []eval.Tuple {
	var base []eval.Tuple
	for _, n := range nw.Nodes() {
		for _, nb := range n.Neighbors() {
			g := eval.NewTuple("g",
				ast.Symbol(fmt.Sprintf("n%d", n.ID)),
				ast.Symbol(fmt.Sprintf("n%d", nb)))
			base = append(base, g)
			e.InjectAt(0, n.ID, g)
		}
	}
	return base
}

func TestLogicJShortestPathTreeDistributed(t *testing.T) {
	m := 4
	nw := topo.Grid(m, nsim.Config{Seed: 10})
	prog := mustProg(t, logicJSrc+"\nj(n0, 0).\n")
	e, err := New(nw, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Finalize()
	base := injectGridEdges(e, nw)
	e.Start() // injects the root fact j(n0, 0)
	nw.Run(0)

	src := logicJSrc + "\nj(n0, 0).\n"
	oracleCompare(t, e, src, base, "j/2")

	// BFS depths on the grid from corner (0,0): depth = p + q.
	j := e.Derived("j/2")
	if len(j) != m*m {
		t.Fatalf("j has %d tuples, want %d: %v", len(j), m*m, j)
	}
	for _, tup := range j {
		var id int
		fmt.Sscanf(tup.Args[0].Str, "n%d", &id)
		p, q := topo.GridCoords(m, nsim.NodeID(id))
		if tup.Args[1].Int != int64(p+q) {
			t.Errorf("j(%s) = %d, want %d", tup.Args[0].Str, tup.Args[1].Int, p+q)
		}
	}
}

func TestLogicJTuplesLiveAtTheirNodes(t *testing.T) {
	// Section V: each node stores only tuples about itself and its
	// neighbors — the engine must place j(y, d) at node y.
	m := 3
	nw := topo.Grid(m, nsim.Config{Seed: 11})
	prog := mustProg(t, logicJSrc+"\nj(n0, 0).\n")
	e, err := New(nw, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Finalize()
	injectGridEdges(e, nw)
	e.Start()
	nw.Run(0)
	for _, n := range nw.Nodes() {
		for _, tup := range e.rts[n.ID].derivedLive {
			if tup.Pred != "j/2" && tup.Pred != "jp/2" {
				continue
			}
			var id int
			fmt.Sscanf(tup.Args[0].Str, "n%d", &id)
			if nsim.NodeID(id) != n.ID {
				t.Errorf("tuple %v homed at node %d", tup, n.ID)
			}
		}
	}
}

func TestSpatialConstraintStillCorrectWhenLocal(t *testing.T) {
	// With a spatial constraint, tuples generated within the radius must
	// still join; the savings experiment is E4.
	src := `
.base ra/2.
.base rb/2.
outs(X, Z) :- ra(X, Y), rb(Y, Z).
`
	e, nw := buildGrid(t, 8, src, Config{Scheme: gpa.Perpendicular, SpatialRadius: 3}, nsim.Config{Seed: 12})
	// Generate partners within 2 hops of each other.
	a := eval.NewTuple("ra", ast.Int64(1), ast.Int64(2))
	b := eval.NewTuple("rb", ast.Int64(2), ast.Int64(3))
	e.InjectAt(0, topo.GridID(8, 3, 3), a)
	e.InjectAt(2, topo.GridID(8, 4, 4), b)
	nw.Run(0)
	if len(e.Derived("outs/2")) != 1 {
		t.Errorf("outs = %v", e.Derived("outs/2"))
	}
	_ = nw
}

func TestEngineRejectsBadAggregates(t *testing.T) {
	nw := topo.Grid(3, nsim.Config{})
	// Two relational subgoals: beyond what TAG collection supports.
	_, err := New(nw, mustProg(t, `s(min<D>) :- p(D), q(D).`), Config{})
	if err == nil {
		t.Fatal("multi-stream aggregate should be rejected")
	}
	nw2 := topo.Grid(3, nsim.Config{})
	_, err = New(nw2, mustProg(t, `s(min<D>) :- p(X, D), NOT q(X).`), Config{})
	if err == nil {
		t.Fatal("negated aggregate body should be rejected")
	}
}

func TestEngineRejectsMixedPlacement(t *testing.T) {
	nw := topo.Grid(3, nsim.Config{})
	src := `
.store a/1 at 0.
out(X) :- a(X), b(X).
`
	_, err := New(nw, mustProg(t, src), Config{})
	if err == nil {
		t.Fatal("mixed placement should be rejected")
	}
}

func TestEngineRejectsNonHeadNegVarsInLocalMode(t *testing.T) {
	nw := topo.Grid(3, nsim.Config{})
	src := `
.store a/2 at 0.
.store b/2 at 0.
.store c/1 at 0.
c(X) :- a(X, Y), NOT b(X, Y).
`
	// Y occurs in the negation but not in the head c(X).
	_, err := New(nw, mustProg(t, src), Config{})
	if err == nil {
		t.Fatal("non-head negation variables in local mode should be rejected")
	}
}

func TestWindowExpiryPreventsJoin(t *testing.T) {
	src := `
.base ra/2.
.base rb/2.
.window ra/2 50.
.window rb/2 50.
outw(X, Z) :- ra(X, Y), rb(Y, Z).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 13})
	a := eval.NewTuple("ra", ast.Int64(1), ast.Int64(2))
	b := eval.NewTuple("rb", ast.Int64(2), ast.Int64(3))
	e.InjectAt(0, 2, a)
	e.InjectAt(5000, 20, b) // far outside ra's window
	nw.Run(0)
	if n := len(e.Derived("outw/2")); n != 0 {
		t.Errorf("expired tuples joined: %v", e.Derived("outw/2"))
	}
}

func TestWindowedJoinWithinRange(t *testing.T) {
	src := `
.base ra/2.
.base rb/2.
.window ra/2 5000.
.window rb/2 5000.
outw(X, Z) :- ra(X, Y), rb(Y, Z).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 14})
	a := eval.NewTuple("ra", ast.Int64(1), ast.Int64(2))
	b := eval.NewTuple("rb", ast.Int64(2), ast.Int64(3))
	e.InjectAt(0, 2, a)
	e.InjectAt(100, 20, b)
	nw.Run(0)
	if n := len(e.Derived("outw/2")); n != 1 {
		t.Errorf("in-window join missing: %v", e.Derived("outw/2"))
	}
}

func TestRecursiveTransitiveClosureDistributed(t *testing.T) {
	src := `
.base edge/2.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 15})
	var base []eval.Tuple
	for i := int64(0); i < 4; i++ {
		tup := eval.NewTuple("edge", ast.Int64(i), ast.Int64(i+1))
		base = append(base, tup)
		e.InjectAt(nsim.Time(i*4), nsim.NodeID(i*5), tup)
	}
	nw.Run(0)
	oracleCompare(t, e, src, base, "path/2")
	if n := len(e.Derived("path/2")); n != 10 {
		t.Errorf("path count = %d, want 10", n)
	}
}

func TestFunctionSymbolsInDistributedJoin(t *testing.T) {
	// Function symbols: join conditions evaluated via term matching only
	// (Section III-A); lists flow through PA untouched.
	src := `
.base obs/1.
pairlist(l(A, B)) :- obs(A), obs(B), A < B.
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 16})
	var base []eval.Tuple
	for i := int64(0); i < 3; i++ {
		tup := eval.NewTuple("obs", ast.Int64(i))
		base = append(base, tup)
		e.InjectAt(nsim.Time(i*4), nsim.NodeID(i*7+2), tup)
	}
	nw.Run(0)
	oracleCompare(t, e, src, base, "pairlist/1")
	if n := len(e.Derived("pairlist/1")); n != 3 {
		t.Errorf("pairlist = %v", e.Derived("pairlist/1"))
	}
}

func TestMessageCountsAccountedByKind(t *testing.T) {
	e, nw := buildGrid(t, 5, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 17})
	e.InjectAt(0, 7, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)))
	e.InjectAt(3, 18, eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)))
	nw.Run(0)
	if nw.KindCounts[kindStore] == 0 {
		t.Error("no storage messages accounted")
	}
	if nw.KindCounts[kindJoin] == 0 {
		t.Error("no join messages accounted")
	}
	// Result messages may be zero when a result's home happens to be the
	// completing node itself; store+join traffic must always exist.
	if nw.TotalBytes == 0 {
		t.Error("no bytes accounted")
	}
}

func TestPABeatsCentralizedOnHotspot(t *testing.T) {
	// E2's claim in miniature: the max per-node load under PA stays well
	// below the centralized server's.
	run := func(scheme gpa.Scheme) int64 {
		e, nw := buildGrid(t, 8, joinSrc, Config{Scheme: scheme, Server: 0}, nsim.Config{Seed: 18})
		k := int64(0)
		for i := 0; i < 24; i++ {
			k++
			e.InjectAt(nsim.Time(i*10), nsim.NodeID((i*13)%nw.Len()),
				eval.NewTuple("ra", ast.Int64(k), ast.Int64(k)))
			e.InjectAt(nsim.Time(i*10+5), nsim.NodeID((i*17+3)%nw.Len()),
				eval.NewTuple("rb", ast.Int64(k), ast.Int64(k)))
		}
		nw.Run(0)
		return nw.MaxNodeLoad()
	}
	pa := run(gpa.Perpendicular)
	central := run(gpa.Centralized)
	if pa >= central {
		t.Errorf("PA hotspot %d should be below centralized %d", pa, central)
	}
}
