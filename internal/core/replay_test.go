package core

import (
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

// Replay without the generation log must fail fast, not silently
// repair nothing.
func TestReplayRequiresLog(t *testing.T) {
	e, nw := buildGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 1})
	nw.Run(0)
	if err := e.Replay(); err == nil {
		t.Fatal("Replay without Config.ReplayLog succeeded")
	}
}

// A replay on a healthy, quiescent run must be a semantic no-op: the
// derived state still equals the oracle afterwards (the re-execution
// collapses into the already-present state by stamp idempotency).
func TestReplayNoOpOnHealthyRun(t *testing.T) {
	e, nw := buildGrid(t, 5, joinSrc,
		Config{Scheme: gpa.Perpendicular, ReplayLog: true}, nsim.Config{Seed: 2})
	var base []eval.Tuple
	for i := 0; i < 6; i++ {
		ra := eval.NewTuple("ra", ast.Int64(int64(i)), ast.Int64(int64(i%3)))
		rb := eval.NewTuple("rb", ast.Int64(int64(i%3)), ast.Int64(int64(i)))
		e.InjectAt(nsim.Time(i*90), nsim.NodeID((i*5)%nw.Len()), ra)
		e.InjectAt(nsim.Time(i*90+30), nsim.NodeID((i*9+2)%nw.Len()), rb)
		base = append(base, ra, rb)
	}
	nw.Run(0)
	oracleCompare(t, e, joinSrc, base, "out/2")
	if err := e.Replay(); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	oracleCompare(t, e, joinSrc, base, "out/2")
}

// Crashing a third of the grid while the workload runs loses walkers
// and candidates for good; a replay pass after the nodes recover must
// restore oracle equality. Deletions are part of the workload so the
// repair also replays deletion markers.
func TestReplayRepairsCrashLoss(t *testing.T) {
	e, nw := buildGrid(t, 6, joinSrc,
		Config{Scheme: gpa.Perpendicular, ReplayLog: true}, nsim.Config{Seed: 3})
	// Take a band of the grid down for the middle of the workload.
	var downed []nsim.NodeID
	for id := 6; id < 18; id++ {
		downed = append(downed, nsim.NodeID(id))
	}
	nw.ScheduleAt(100, func() {
		for _, id := range downed {
			nw.Node(id).Down = true
		}
	})
	nw.ScheduleAt(900, func() {
		for _, id := range downed {
			nw.Node(id).Down = false
		}
	})
	live := map[string]eval.Tuple{}
	for i := 0; i < 8; i++ {
		ra := eval.NewTuple("ra", ast.Int64(int64(i)), ast.Int64(int64(i%4)))
		rb := eval.NewTuple("rb", ast.Int64(int64(i%4)), ast.Int64(int64(i)))
		e.InjectAt(nsim.Time(40+i*110), nsim.NodeID((i*7)%nw.Len()), ra)
		e.InjectAt(nsim.Time(70+i*110), nsim.NodeID((i*13+4)%nw.Len()), rb)
		live[ra.Key()] = ra
		live[rb.Key()] = rb
	}
	// Delete two tuples, one while the band is down.
	del1 := eval.NewTuple("ra", ast.Int64(0), ast.Int64(0))
	del2 := eval.NewTuple("rb", ast.Int64(1), ast.Int64(5))
	e.InjectDeleteAt(600, nsim.NodeID(0), del1)
	e.InjectDeleteAt(1200, nsim.NodeID((5*13+4)%nw.Len()), del2)
	delete(live, del1.Key())
	delete(live, del2.Key())
	nw.Run(0)

	var base []eval.Tuple
	for _, tup := range live {
		base = append(base, tup)
	}
	if err := e.Replay(); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	oracleCompare(t, e, joinSrc, base, "out/2")
}

// Only base generations are logged: cascaded derived generations would
// grow the log without adding replayable information.
func TestReplayLogCountsBaseGenerationsOnly(t *testing.T) {
	e, nw := buildGrid(t, 4, joinSrc,
		Config{Scheme: gpa.Perpendicular, ReplayLog: true}, nsim.Config{Seed: 4})
	e.InjectAt(10, 0, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)))
	e.InjectAt(20, 1, eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)))
	nw.Run(0)
	if len(e.Derived("out/2")) != 1 {
		t.Fatalf("expected one derived tuple, got %d", len(e.Derived("out/2")))
	}
	if got := e.ReplayLogLen(); got != 2 {
		t.Fatalf("ReplayLogLen = %d, want 2 (base generations only)", got)
	}
	e.InjectDeleteAt(2000, 0, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)))
	nw.Run(0)
	if got := e.ReplayLogLen(); got != 3 {
		t.Fatalf("ReplayLogLen after delete = %d, want 3", got)
	}
}
