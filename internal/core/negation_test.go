package core

import (
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

// lateNegSrc has a negated subgoal whose variable (Z) is bound only
// mid-sweep (by rb), forcing the engine's verification pass: the
// completed result must be re-checked across the whole join region.
const lateNegSrc = `
.base ra/2.
.base rb/2.
.base ex/1.
res(X, Z) :- ra(X, Y), rb(Y, Z), NOT ex(Z).
`

func TestLateGroundNegationVerificationPass(t *testing.T) {
	e, nw := buildGrid(t, 6, lateNegSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 31})
	base := []eval.Tuple{
		eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)),
		eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)), // res(1,3) unless ex(3)
		eval.NewTuple("ra", ast.Int64(4), ast.Int64(5)),
		eval.NewTuple("rb", ast.Int64(5), ast.Int64(6)), // res(4,6), blocked by ex(6)
		eval.NewTuple("ex", ast.Int64(6)),
	}
	for i, b := range base {
		e.InjectAt(nsim.Time(i*4), nsim.NodeID((i*9+1)%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, lateNegSrc, base, "res/2")
	res := e.Derived("res/2")
	if len(res) != 1 || res[0].Args[1].Int != 3 {
		t.Errorf("res = %v", res)
	}
}

func TestLateGroundNegationBlockerArrivesLater(t *testing.T) {
	// The blocker ex(3) arrives long after res(1,3) is derived: the
	// negated-occurrence trigger must retract it.
	e, nw := buildGrid(t, 6, lateNegSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 32})
	base := []eval.Tuple{
		eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)),
		eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)),
	}
	e.InjectAt(0, 3, base[0])
	e.InjectAt(4, 17, base[1])
	ex := eval.NewTuple("ex", ast.Int64(3))
	e.InjectAt(6000, 30, ex)
	nw.Run(0)
	oracleCompare(t, e, lateNegSrc, append(base, ex), "res/2")
	if n := len(e.Derived("res/2")); n != 0 {
		t.Errorf("res should be retracted: %v", e.Derived("res/2"))
	}
}

// Example 2 distributed end-to-end: trajectory lists built by
// XY-recursion over function symbols, with negation for start/end
// detection and a built-in pairwise comparison.
func TestTrajectoryProgramDistributed(t *testing.T) {
	const src = `
.base report/1.
notStart(R2) :- report(R1), report(R2), close(R1, R2).
notLast(R1) :- report(R1), report(R2), close(R1, R2).
traj([R2, R1]) :- report(R1), report(R2), close(R1, R2), NOT notStart(R1).
traj([R2 | L]) :- traj(L), L = [R1 | _], report(R2), close(R1, R2).
complete(L) :- traj(L), L = [R | _], NOT notLast(R).
parallel(L1, L2) :- complete(L1), complete(L2), isParallel(L1, L2).
`
	e, nw := buildGrid(t, 7, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 33})
	rep := func(x, y, ts int64) eval.Tuple {
		return eval.NewTuple("report", ast.Compound("r", ast.Int64(x), ast.Int64(y), ast.Int64(ts)))
	}
	base := []eval.Tuple{
		rep(0, 0, 1), rep(1, 1, 2), rep(2, 2, 3), // track 1
		rep(4, 0, 1), rep(5, 1, 2), rep(6, 2, 3), // parallel track 2
	}
	for i, b := range base {
		e.InjectAt(nsim.Time(i*9), nsim.NodeID((i*11+2)%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, src, base, "traj/1", "complete/1", "parallel/2")
	if n := len(e.Derived("complete/1")); n != 2 {
		t.Errorf("complete = %v", e.Derived("complete/1"))
	}
	if n := len(e.Derived("parallel/2")); n != 2 { // both orderings
		t.Errorf("parallel = %v", e.Derived("parallel/2"))
	}
}

// Deletion inside a windowed stream: the deletion marker respects the
// window (Theorem 3's visibility rules combine).
func TestWindowedDeletion(t *testing.T) {
	src := `
.base ra/2.
.base rb/2.
.window ra/2 5000.
.window rb/2 5000.
outw(X, Z) :- ra(X, Y), rb(Y, Z).
`
	e, nw := buildGrid(t, 5, src, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 34})
	a := eval.NewTuple("ra", ast.Int64(1), ast.Int64(2))
	b := eval.NewTuple("rb", ast.Int64(2), ast.Int64(3))
	e.InjectAt(0, 2, a)
	e.InjectAt(100, 20, b)
	e.InjectDeleteAt(2500, 2, a)
	nw.Run(0)
	if n := len(e.Derived("outw/2")); n != 0 {
		t.Errorf("deleted within window: %v", e.Derived("outw/2"))
	}
}

// NaiveBroadcast evaluates negation locally (everything is replicated
// everywhere) and must agree with the oracle.
func TestNaiveBroadcastNegation(t *testing.T) {
	e, nw := buildGrid(t, 5, uncovSrc, Config{Scheme: gpa.NaiveBroadcast}, nsim.Config{Seed: 35})
	base := []eval.Tuple{
		vehT("enemy", 0, 0, 1),
		vehT("friendly", 3, 4, 1),
		vehT("enemy", 30, 30, 1),
	}
	for i, b := range base {
		e.InjectAt(nsim.Time(i*6), nsim.NodeID((i*7+1)%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, uncovSrc, base, "cov/2", "uncov/2")
}

// MultiPass with a negated subgoal still agrees with the oracle.
func TestMultiPassWithNegation(t *testing.T) {
	e, nw := buildGrid(t, 6, lateNegSrc, Config{Scheme: gpa.Perpendicular, MultiPass: true}, nsim.Config{Seed: 36})
	base := []eval.Tuple{
		eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)),
		eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)),
		eval.NewTuple("ex", ast.Int64(3)),
		eval.NewTuple("ra", ast.Int64(7), ast.Int64(8)),
		eval.NewTuple("rb", ast.Int64(8), ast.Int64(9)),
	}
	for i, b := range base {
		e.InjectAt(nsim.Time(i*5), nsim.NodeID((i*13+4)%nw.Len()), b)
	}
	nw.Run(0)
	oracleCompare(t, e, lateNegSrc, base, "res/2")
}

// Centroid scheme under deletions: the deletion marker follows the same
// region-storage path and the join flood computes the removals.
func TestCentroidDeletion(t *testing.T) {
	e, nw := buildGrid(t, 6, joinSrc, Config{Scheme: gpa.Centroid}, nsim.Config{Seed: 37})
	ra := eval.NewTuple("ra", ast.Int64(1), ast.Int64(2))
	rb := eval.NewTuple("rb", ast.Int64(2), ast.Int64(3))
	e.InjectAt(0, 3, ra)
	e.InjectAt(5, 30, rb)
	e.InjectDeleteAt(6000, 3, ra)
	nw.Run(0)
	oracleCompare(t, e, joinSrc, []eval.Tuple{rb}, "out/2")
	if n := len(e.Derived("out/2")); n != 0 {
		t.Errorf("centroid deletion failed: %v", e.Derived("out/2"))
	}
}
