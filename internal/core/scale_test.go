package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

// A larger deployment: 256 nodes, 120 updates with deletions mixed in.
// Exercises scheduler volume, window bookkeeping and derivation cascades
// at a size closer to real deployments; still compares exactly against
// the oracle.
func TestScaleLargeGridTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid timeline")
	}
	e, nw := buildGrid(t, 16, uncovSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 77})
	live := map[string]eval.Tuple{}
	origin := map[string]nsim.NodeID{}
	at := nsim.Time(0)
	mk := func(i int) eval.Tuple {
		kind := "enemy"
		if i%3 == 0 {
			kind = "friendly"
		}
		return eval.NewTuple("veh", ast.Symbol(kind),
			ast.Compound("loc", ast.Int64(int64(i%9)), ast.Int64(int64((i*5)%9))),
			ast.Int64(int64(i%3)))
	}
	for i := 0; i < 120; i++ {
		at += nsim.Time(37)
		if i%5 == 4 && len(live) > 0 {
			for k, tup := range live { // delete one arbitrary live tuple
				e.InjectDeleteAt(at, origin[k], tup)
				delete(live, k)
				break
			}
			continue
		}
		tup := mk(i)
		if _, dup := live[tup.Key()]; dup {
			continue
		}
		node := nsim.NodeID((i * 31) % nw.Len())
		live[tup.Key()] = tup
		origin[tup.Key()] = node
		e.InjectAt(at, node, tup)
	}
	nw.Run(0)
	var base []eval.Tuple
	for _, tup := range live {
		base = append(base, tup)
	}
	oracleCompare(t, e, uncovSrc, base, "cov/2", "uncov/2")
	if nw.TotalSent == 0 {
		t.Fatal("no traffic?")
	}
}

// SPT at 15x15 = 225 nodes: the staged XY evaluation still converges to
// the exact BFS tree at scale.
func TestScaleLogicJLargeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("large SPT")
	}
	m := 15
	nw := topoGrid(m)
	prog := mustProg(t, logicJSrc+"\nj(n0, 0).\n")
	e, err := New(nw, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Finalize()
	injectGridEdges(e, nw)
	e.Start()
	nw.Run(0)
	j := e.Derived("j/2")
	if len(j) != m*m {
		t.Fatalf("j = %d tuples, want %d", len(j), m*m)
	}
	for _, tup := range j {
		var id int
		mustSscan(t, tup.Args[0].Str, &id)
		p, q := id%m, id/m
		if tup.Args[1].Int != int64(p+q) {
			t.Errorf("depth(%s) = %d, want %d", tup.Args[0].Str, tup.Args[1].Int, p+q)
		}
	}
}

func topoGrid(m int) *nsim.Network {
	nw := nsim.New(nsim.Config{Seed: 79})
	for q := 0; q < m; q++ {
		for p := 0; p < m; p++ {
			nw.AddNode(float64(p), float64(q))
		}
	}
	return nw
}

func mustSscan(t *testing.T, s string, id *int) {
	t.Helper()
	if _, err := fmt.Sscanf(s, "n%d", id); err != nil {
		t.Fatalf("bad node symbol %q", s)
	}
}
