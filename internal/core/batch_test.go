package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

// The batched link transport must be invisible to the program: the same
// workload with BatchLinks on and off reaches the same final derived
// database, while the batched run ships strictly fewer link messages and
// strictly fewer accounted bytes (shared headers).

func TestBatchLinksEquivalence(t *testing.T) {
	src := `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
.query out/2.
`
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func(batch bool) (*Engine, *nsim.Network) {
				e, nw := buildGrid(t, 8, src,
					Config{Scheme: gpa.Perpendicular, BatchLinks: batch},
					nsim.Config{Seed: seed, MaxSkew: 5})
				r := rand.New(rand.NewSource(seed*31 + 7))
				at := nsim.Time(0)
				// Epoch bursts: one source emits a handful of tuples in
				// the same tick, so the storage and join walkers they
				// spawn travel the sweep paths together.
				for burst := 0; burst < 6; burst++ {
					at += nsim.Time(400 + r.Intn(300))
					node := nsim.NodeID(r.Intn(nw.Len()))
					for k := 0; k < 4; k++ {
						x := int64(r.Intn(6))
						y := int64(r.Intn(4))
						e.InjectAt(at, node, eval.NewTuple("ra", ast.Int64(x), ast.Int64(y)))
						e.InjectAt(at, node, eval.NewTuple("rb", ast.Int64(y), ast.Int64(int64(r.Intn(6)))))
					}
				}
				nw.Run(0)
				return e, nw
			}
			eOff, nwOff := run(false)
			eOn, nwOn := run(true)
			if fo, fb := derivedFingerprint(eOff), derivedFingerprint(eOn); fo != fb {
				t.Fatalf("derived state differs:\nunbatched:\n%s\nbatched:\n%s", fo, fb)
			}
			if nwOn.TotalSent >= nwOff.TotalSent {
				t.Fatalf("batching did not reduce messages: %d batched vs %d unbatched",
					nwOn.TotalSent, nwOff.TotalSent)
			}
			if nwOn.TotalBytes >= nwOff.TotalBytes {
				t.Fatalf("batching did not reduce bytes: %d batched vs %d unbatched",
					nwOn.TotalBytes, nwOff.TotalBytes)
			}
			if nwOn.KindCounts[kindBatch] == 0 {
				t.Fatal("no frames were formed")
			}
			if nwOff.KindCounts[kindBatch] != 0 {
				t.Fatal("unbatched run formed frames")
			}
		})
	}
}

// TestBatchFrameAccounting pins the frame format arithmetic: a frame of
// k items costs one shared header plus the items' header-stripped sizes.
func TestBatchFrameAccounting(t *testing.T) {
	nw := nsim.New(nsim.Config{Seed: 1})
	a := nw.AddNode(0, 0)
	nw.AddNode(1, 0)
	e := &Engine{nw: nw, cfg: Config{BatchLinks: true}}
	rt := &nodeRT{e: e, node: a}
	a.App = rt
	nw.Finalize()
	nw.ScheduleAt(0, func() {
		rt.send(1, kindResult, nil, 30)
		rt.send(1, kindResult, nil, 20)
		rt.send(1, kindResult, nil, 14)
	})
	nw.Run(0)
	wantBytes := int64(linkHeader + (30 - linkHeader) + (20 - linkHeader) + (14 - linkHeader))
	if nw.TotalSent != 1 {
		t.Fatalf("sent %d messages, want 1 frame", nw.TotalSent)
	}
	if nw.TotalBytes != wantBytes {
		t.Fatalf("accounted %d bytes, want %d", nw.TotalBytes, wantBytes)
	}
	if nw.KindCounts[kindBatch] != 1 {
		t.Fatalf("kind counts = %v", nw.KindCounts)
	}
}
