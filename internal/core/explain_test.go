package core

import (
	"strings"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/topo"
)

// buildProvGrid is buildGrid with the observability layer and a
// provenance graph attached before deployment.
func buildProvGrid(t testing.TB, m int, src string, cfg Config, simCfg nsim.Config) (*Engine, *nsim.Network, *provenance.Graph) {
	t.Helper()
	nw := topo.Grid(m, simCfg)
	e, err := New(nw, mustProg(t, src), cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	reg := obs.NewRegistry()
	nw.Observe(reg, nil)
	e.Observe(reg, nil)
	g := provenance.NewGraph()
	e.ObserveProvenance(reg, g)
	nw.Finalize()
	e.Start()
	return e, nw, g
}

func mustInject(t testing.TB, e *Engine, at nsim.Time, node nsim.NodeID, tup eval.Tuple) {
	t.Helper()
	if err := e.InjectAt(at, node, tup); err != nil {
		t.Fatal(err)
	}
}

func TestExplainTwoStreamJoin(t *testing.T) {
	e, nw, _ := buildProvGrid(t, 5, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 7})
	mustInject(t, e, 10, 3, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)))
	mustInject(t, e, 20, 9, eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)))
	nw.Run(0)

	tree, err := e.Explain("out", ast.Int64(1), ast.Int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Key != "out/2|i1,i3" || len(tree.Derivs) != 1 {
		t.Fatalf("tree = %+v", tree)
	}
	d := tree.Derivs[0]
	if len(d.Body) != 2 {
		t.Fatalf("join derivation should have two body tuples: %+v", d)
	}
	bodyKeys := map[string]bool{}
	for _, b := range d.Body {
		if !b.Base {
			t.Fatalf("join body should be base leaves: %+v", b)
		}
		bodyKeys[b.Key] = true
	}
	if !bodyKeys["ra/2|i1,i2"] || !bodyKeys["rb/2|i2,i3"] {
		t.Fatalf("body keys = %v", bodyKeys)
	}
	if d.SettledAt < d.SentAt || d.SettledAt <= 0 {
		t.Fatalf("timestamps: sent %d settled %d", d.SentAt, d.SettledAt)
	}

	bl, err := e.Blame("out", ast.Int64(1), ast.Int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Steps) == 0 || bl.Steps[0].Key != "out/2|i1,i3" || bl.Total != bl.Steps[0].SettledAt {
		t.Fatalf("blame = %+v", bl)
	}
	// The predicate/arity spelling is also accepted.
	if _, err := e.Explain("out/2", ast.Int64(1), ast.Int64(3)); err != nil {
		t.Fatalf("arity-qualified query: %v", err)
	}
}

func TestExplainBaseTuple(t *testing.T) {
	e, nw, _ := buildProvGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 7})
	mustInject(t, e, 10, 2, eval.NewTuple("ra", ast.Int64(4), ast.Int64(5)))
	nw.Run(0)
	tree, err := e.Explain("ra", ast.Int64(4), ast.Int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Base || len(tree.Derivs) != 0 {
		t.Fatalf("base tuple should explain as a [base] leaf: %+v", tree)
	}
	if _, err := e.Explain("ra", ast.Int64(9), ast.Int64(9)); err == nil {
		t.Fatal("a base tuple that was never injected should not explain")
	}
	if _, err := e.Blame("ra", ast.Int64(4), ast.Int64(5)); err == nil {
		t.Fatal("Blame on a base predicate should error")
	}
}

const negFlipSrc = `
.base a/2.
.base blk/2.
d(X, Y) :- a(X, Y), NOT blk(X, Y).
`

// The satellite regression: a tuple that was derived and then deleted
// by a negation flip must explain as not-found, because the
// set-of-derivations store garbage-collects its provenance with it.
func TestExplainDeletedByNegationFlip(t *testing.T) {
	e, nw, g := buildProvGrid(t, 4, negFlipSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 3})
	mustInject(t, e, 10, 1, eval.NewTuple("a", ast.Int64(1), ast.Int64(2)))
	nw.Run(0)
	if _, err := e.Explain("d", ast.Int64(1), ast.Int64(2)); err != nil {
		t.Fatalf("d(1,2) should be explainable while unblocked: %v", err)
	}

	// The blocker arrives: NOT blk(1,2) flips and d(1,2) is deleted.
	mustInject(t, e, nw.Now()+50, 5, eval.NewTuple("blk", ast.Int64(1), ast.Int64(2)))
	nw.Run(0)
	if len(e.Derived("d/2")) != 0 {
		t.Fatal("the negation flip should have deleted d(1,2)")
	}
	_, err := e.Explain("d", ast.Int64(1), ast.Int64(2))
	if err == nil {
		t.Fatal("a deleted tuple must not explain")
	}
	if !strings.Contains(err.Error(), "no live derivation") {
		t.Fatalf("error should say there is no live derivation: %v", err)
	}
	if g.Live("d/2|i1,i2") {
		t.Fatal("the provenance graph should have dropped the derivation")
	}
	// History is retained even though liveness is gone.
	if g.Captured() == 0 {
		t.Fatal("captured count should survive the deletion")
	}
}

func TestExplainQueryValidation(t *testing.T) {
	e, nw, _ := buildProvGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 7})
	nw.Run(0)
	if _, err := e.Explain("nosuch", ast.Int64(1)); err == nil {
		t.Fatal("unknown predicate should error")
	}
	if _, err := e.Explain("out", ast.Var("X"), ast.Int64(3)); err == nil {
		t.Fatal("non-ground arguments should error")
	}
	plain, _ := buildGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 7})
	if _, err := plain.Explain("out", ast.Int64(1), ast.Int64(3)); err != ErrNoProvenance {
		t.Fatalf("unattached engine should return ErrNoProvenance, got %v", err)
	}
	if _, err := plain.Blame("out", ast.Int64(1), ast.Int64(3)); err != ErrNoProvenance {
		t.Fatalf("unattached engine Blame should return ErrNoProvenance, got %v", err)
	}
}

// Replay wipes and rebuilds all distributed state; provenance must be
// wiped with it (stale pre-replay records would claim derivations the
// rebuilt run never performed) and repopulated by the replayed run.
func TestExplainSurvivesReplay(t *testing.T) {
	e, nw, g := buildProvGrid(t, 4, joinSrc,
		Config{Scheme: gpa.Perpendicular, ReplayLog: true}, nsim.Config{Seed: 7})
	mustInject(t, e, 10, 3, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)))
	mustInject(t, e, 20, 9, eval.NewTuple("rb", ast.Int64(2), ast.Int64(3)))
	nw.Run(0)
	before := g.Captured()
	if before == 0 {
		t.Fatal("no provenance captured before replay")
	}

	if err := e.Replay(); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	tree, err := e.Explain("out", ast.Int64(1), ast.Int64(3))
	if err != nil {
		t.Fatalf("replayed derivation should be explainable: %v", err)
	}
	if len(tree.Derivs) != 1 || len(tree.Derivs[0].Body) != 2 {
		t.Fatalf("rebuilt tree = %+v", tree)
	}
}
