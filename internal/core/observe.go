package core

import "repro/internal/obs"

// Observe attaches the observability layer to the engine. Call any
// time after New (before or after Start); passing both arguments nil
// detaches the trace and leaves the nil no-op counter handles in
// place.
//
// Live counters (one atomic add on the enabled path, one nil check
// when disabled) cover the deductive work the engine does not already
// account anywhere:
//
//	core.probes              store probes by the join sweep (visibleMatch)
//	core.joins               successful subgoal extensions (partial results)
//	core.candidates          complete results routed toward a home node
//	core.settles             candidates applied at their finalize deadline
//	core.derivations         derived tuples becoming live at their home
//	core.derivations.<pred>  ditto, split by head predicate
//	core.deletions           derived tuples losing their last derivation
//	core.deletions.<pred>    ditto, split by head predicate
//
// Snapshot-time providers expose state the engine already tracks, so
// observed and unobserved runs execute identical hot paths for them:
//
//	core.mem.max_tuples      max per-node stored tuples (replicas+derivations)
//	core.mem.total_tuples    network-wide stored tuples (avg = total/nodes)
//	core.derived_live        live derived tuples across all home nodes
//	core.derived_live.<pred> ditto, split by predicate
//	core.results_logged      finalized transitions of query predicates
//	routing.nearest_hits     nearest-node cache hits
//	routing.nearest_misses   nearest-node cache misses (recomputations)
//
// trace, if non-nil, records EvDerive/EvDelete on derivation-state
// transitions and EvSettle per applied candidate, with Pred set to the
// head predicate key and Peer = -1 (local events have no other party).
func (e *Engine) Observe(reg *obs.Registry, trace *obs.Trace) {
	e.trace = trace
	if reg == nil {
		return
	}
	e.cProbes = reg.Counter("core.probes")
	e.cJoins = reg.Counter("core.joins")
	e.cCandidates = reg.Counter("core.candidates")
	e.cSettles = reg.Counter("core.settles")
	e.cDerivations = reg.Counter("core.derivations")
	e.cDeletions = reg.Counter("core.deletions")

	// Pre-resolve the per-predicate handles for every predicate the
	// program mentions, so the finalize path indexes a read-only map
	// and never allocates. e.windows is keyed by exactly the rule
	// predicates (heads and bodies).
	dv := reg.CounterVec("core.derivations")
	del := reg.CounterVec("core.deletions")
	e.predDerive = make(map[string]*obs.Counter, len(e.windows))
	e.predDelete = make(map[string]*obs.Counter, len(e.windows))
	for p := range e.windows {
		e.predDerive[p] = dv.With(p)
		e.predDelete[p] = del.With(p)
	}

	reg.Provide(func(emit func(name string, v int64)) {
		maxMem := 0
		var total int64
		for _, n := range e.nw.Nodes() {
			m := e.StoredReplicas(n.ID) + e.DerivationEntries(n.ID)
			total += int64(m)
			if m > maxMem {
				maxMem = m
			}
		}
		emit("core.mem.max_tuples", int64(maxMem))
		emit("core.mem.total_tuples", total)

		var live int64
		perPred := make(map[string]int64)
		for _, rt := range e.rts {
			for _, t := range rt.derivedLive {
				live++
				perPred[t.Pred]++
			}
		}
		emit("core.derived_live", live)
		for p, v := range perPred {
			emit("core.derived_live."+p, v)
		}
		emit("core.results_logged", int64(len(e.ResultLog)))
		emit("routing.nearest_hits", e.router.Hits)
		emit("routing.nearest_misses", e.router.Misses)
	})
}
