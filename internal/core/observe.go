package core

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/obs/provenance"
)

// Default histogram bucket ladders (inclusive upper bounds).
var (
	// settleBuckets covers update-visibility → finalize-application
	// latency in virtual ticks: τs+τc+τj sums land in the khz range on
	// the standard grids.
	settleBuckets = obs.ExpBuckets(64, 2, 9) // 64 .. 16384
	// hopBuckets covers candidate routing producer→home.
	hopBuckets = obs.ExpBuckets(1, 2, 7) // 1 .. 64
	// faninBuckets covers positive-body join width (rules are short).
	faninBuckets = []int64{1, 2, 3, 4, 6, 8}
)

// Observe attaches the observability layer to the engine. Call any
// time after New (before or after Start); passing both arguments nil
// detaches the trace and leaves the nil no-op counter handles in
// place.
//
// Live counters (one atomic add on the enabled path, one nil check
// when disabled) cover the deductive work the engine does not already
// account anywhere:
//
//	core.probes              store probes by the join sweep (visibleMatch)
//	core.joins               successful subgoal extensions (partial results)
//	core.candidates          complete results routed toward a home node
//	core.settles             candidates applied at their finalize deadline
//	core.derivations         derived tuples becoming live at their home
//	core.derivations.<pred>  ditto, split by head predicate
//	core.deletions           derived tuples losing their last derivation
//	core.deletions.<pred>    ditto, split by head predicate
//
// Snapshot-time providers expose state the engine already tracks, so
// observed and unobserved runs execute identical hot paths for them:
//
//	core.mem.max_tuples      max per-node stored tuples (replicas+derivations)
//	core.mem.total_tuples    network-wide stored tuples (avg = total/nodes)
//	core.mem.max             alias of max_tuples (per-node memory family)
//	core.mem.p50             median per-node stored tuples
//
// Histograms (recorded per settled candidate, flattened by Snapshot
// into .count/.sum/.max/.p50/.p95/.p99/.le_<bound>):
//
//	core.settle_ticks        update visibility → finalize application
//	core.fanin               positive-body join width
//	core.result_hops         candidate routing hops (needs ObserveProvenance)
//	core.derived_live        live derived tuples across all home nodes
//	core.derived_live.<pred> ditto, split by predicate
//	core.results_logged      finalized transitions of query predicates
//	routing.nearest_hits     nearest-node cache hits
//	routing.nearest_misses   nearest-node cache misses (recomputations)
//
// trace, if non-nil, records EvDerive/EvDelete on derivation-state
// transitions and EvSettle per applied candidate, with Pred set to the
// head predicate key and Peer = -1 (local events have no other party).
func (e *Engine) Observe(reg *obs.Registry, trace *obs.Trace) {
	e.trace = trace
	if reg == nil {
		return
	}
	e.cProbes = reg.Counter("core.probes")
	e.cJoins = reg.Counter("core.joins")
	e.cCandidates = reg.Counter("core.candidates")
	e.cSettles = reg.Counter("core.settles")
	e.cDerivations = reg.Counter("core.derivations")
	e.cDeletions = reg.Counter("core.deletions")

	// Pre-resolve the per-predicate handles for every predicate the
	// program mentions, so the finalize path indexes a read-only map
	// and never allocates. e.windows is keyed by exactly the rule
	// predicates (heads and bodies).
	dv := reg.CounterVec("core.derivations")
	del := reg.CounterVec("core.deletions")
	e.predDerive = make(map[string]*obs.Counter, len(e.windows))
	e.predDelete = make(map[string]*obs.Counter, len(e.windows))
	for p := range e.windows {
		e.predDerive[p] = dv.With(p)
		e.predDelete[p] = del.With(p)
	}

	// Histograms: settle latency (update visibility → finalize), join
	// fan-in per settled candidate, and — once provenance stamps hops —
	// candidate routing hop counts. Recorded at the drainFinalize hook;
	// nil handles keep the unobserved path at one branch per settle.
	e.hSettle = reg.Histogram("core.settle_ticks", settleBuckets)
	e.hHops = reg.Histogram("core.result_hops", hopBuckets)
	e.hFanin = reg.Histogram("core.fanin", faninBuckets)

	reg.Provide(func(emit func(name string, v int64)) {
		maxMem := 0
		var total int64
		mems := make([]int, 0, len(e.nw.Nodes()))
		for _, n := range e.nw.Nodes() {
			m := e.StoredReplicas(n.ID) + e.DerivationEntries(n.ID)
			total += int64(m)
			mems = append(mems, m)
			if m > maxMem {
				maxMem = m
			}
		}
		emit("core.mem.max_tuples", int64(maxMem))
		emit("core.mem.total_tuples", total)
		// Per-node memory distribution for E9/E12-style reporting, so
		// harnesses read the snapshot instead of scraping engine
		// internals. core.mem.max aliases max_tuples under the new
		// dotted family.
		emit("core.mem.max", int64(maxMem))
		if len(mems) > 0 {
			sort.Ints(mems)
			emit("core.mem.p50", int64(mems[len(mems)/2]))
		}

		var live int64
		perPred := make(map[string]int64)
		for _, rt := range e.rts {
			for _, t := range rt.derivedLive {
				live++
				perPred[t.Pred]++
			}
		}
		emit("core.derived_live", live)
		for p, v := range perPred {
			emit("core.derived_live."+p, v)
		}
		emit("core.results_logged", int64(len(e.ResultLog)))
		hits, misses := e.router.Hits, e.router.Misses
		for i := range e.shards {
			hits += e.shards[i].router.Hits
			misses += e.shards[i].router.Misses
		}
		emit("routing.nearest_hits", hits)
		emit("routing.nearest_misses", misses)
	})
}

// ObserveProvenance attaches a provenance graph to the engine: every
// settled derivation is captured as a (rule, head, body, producer,
// settler, send/settle time, hop count) record, queryable through
// Engine.Explain and Engine.Blame. Attach before Start so the seeded
// derived facts are captured too. Enables hop stamping on the
// simulator (candidate payloads get one bump per transmitted frame).
//
// reg, if non-nil, gains two gauges sampled at Snapshot time:
//
//	core.prov.live      live (head, derivation) pairs in the graph
//	core.prov.captured  derivations ever captured (slab length)
//
// Passing g == nil detaches provenance (capture sites return to the
// single nil-check no-op). The graph is wiped and rebuilt by Replay —
// pre-replay records would attribute tuples to derivations the
// re-executed timeline never produced (same unsoundness argument as
// incremental replay, DESIGN.md §11).
func (e *Engine) ObserveProvenance(reg *obs.Registry, g *provenance.Graph) {
	e.prov = g
	if g == nil {
		return
	}
	e.nw.EnableHopStamps()
	if reg != nil {
		reg.Gauge("core.prov.live", g.LiveCount)
		reg.Gauge("core.prov.captured", g.Captured)
	}
}
