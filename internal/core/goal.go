package core

import (
	"strconv"
	"strings"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
	"repro/internal/datalog/unify"
)

// ParseGoal parses a point-query goal such as "path(n0, X)" (trailing
// dot optional) and validates it against prog: the goal must be a
// single positive relational literal over a derived predicate of the
// right arity. It is the shared validation front door of Cluster.Query
// and the serving layer (internal/serve), so a goal rejected at the
// REPL is rejected with the same typed error over the wire.
//
// Failures wrap the validation sentinels: ErrBadGoal (not a plain
// positive literal), ErrBasePredicate, ErrArity, ErrUnknownPredicate.
func ParseGoal(prog *ast.Program, goal string) (ast.Literal, error) {
	src := strings.TrimSpace(goal)
	if !strings.HasSuffix(src, ".") {
		src += "."
	}
	r, err := parser.ParseRule(src)
	if err != nil {
		return ast.Literal{}, validationErrorf(ErrBadGoal, "core: goal %q: %v", goal, err)
	}
	if len(r.Body) != 0 || r.HasAggregates() {
		return ast.Literal{}, validationErrorf(ErrBadGoal, "core: goal %q must be a single literal, not a rule", goal)
	}
	lit := r.Head
	if lit.Negated || lit.Builtin {
		return ast.Literal{}, validationErrorf(ErrBadGoal, "core: goal %q must be a positive relational literal", goal)
	}
	key := lit.PredKey()
	known := knownPredKeys(prog)
	switch {
	case prog.IsDerived(key):
		return lit, nil
	case known[key]:
		// Mentioned but not derived: declared .base or an undeclared
		// extensional predicate appearing in rule bodies.
		return ast.Literal{}, validationErrorf(ErrBasePredicate, "core: goal %s: %s is a base predicate (inject base facts; query derived ones)", goal, key)
	}
	// Unknown as written: distinguish a wrong arity from a predicate
	// the program never mentions, mirroring validateInject.
	name := lit.Predicate + "/"
	for p := range known {
		if len(p) > len(name) && p[:len(name)] == name {
			return ast.Literal{}, validationErrorf(ErrArity, "core: goal %s: arity mismatch (program declares %s, got %s)", goal, p, key)
		}
	}
	return ast.Literal{}, validationErrorf(ErrUnknownPredicate, "core: goal %s: predicate %s not mentioned by the program", goal, key)
}

// knownPredKeys collects every predicate key the program mentions:
// declared base predicates, rule heads, and relational body literals.
func knownPredKeys(prog *ast.Program) map[string]bool {
	seen := make(map[string]bool)
	for k := range prog.Base {
		seen[k] = true
	}
	for _, r := range prog.Rules {
		seen[r.Head.PredKey()] = true
		for _, l := range r.Body {
			if !l.Builtin {
				seen[l.PredKey()] = true
			}
		}
	}
	return seen
}

// MatchGoal filters tuples to those the goal literal matches: ground
// goal arguments must be equal, variables bind (consistently — a
// repeated variable must match equal arguments). Input order is
// preserved.
func MatchGoal(goal ast.Literal, tuples []eval.Tuple) []eval.Tuple {
	out := make([]eval.Tuple, 0, len(tuples))
	for _, t := range tuples {
		if len(t.Args) != len(goal.Args) {
			continue
		}
		if _, ok := unify.MatchArgs(goal.Args, t.Args, unify.Subst{}); ok {
			out = append(out, t)
		}
	}
	return out
}

// CanonicalGoal returns a canonical identity string for a goal
// literal: ground arguments render as their tuple-key encoding and
// variables are renamed by first occurrence, so "path(n0, X)" and
// "path(n0, Y)" share an identity but "p(X, X)" and "p(X, Y)" do not.
// The serving layer uses it as the result-cache key.
func CanonicalGoal(goal ast.Literal) string {
	names := make(map[string]int)
	var b []byte
	b = append(b, goal.PredKey()...)
	b = append(b, '|')
	for i, a := range goal.Args {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendCanonicalTerm(b, a, names)
	}
	return string(b)
}

func appendCanonicalTerm(b []byte, t ast.Term, names map[string]int) []byte {
	switch t.Kind {
	case ast.KindVar:
		id, ok := names[t.Str]
		if !ok {
			id = len(names)
			names[t.Str] = id
		}
		b = append(b, '$')
		return strconv.AppendInt(b, int64(id), 10)
	case ast.KindCompound:
		b = append(b, t.Str...)
		b = append(b, '(')
		for i, a := range t.Args {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendCanonicalTerm(b, a, names)
		}
		return append(b, ')')
	default:
		return t.AppendKey(b)
	}
}
