package core

import (
	"errors"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

const goalSrc = `
.base edge/2.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
.query path/2.
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ParseGoal must classify every rejection with the matching sentinel,
// so callers (REPL, daemon, tests) dispatch with errors.Is instead of
// message grepping.
func TestParseGoalTypedErrors(t *testing.T) {
	prog := mustParse(t, goalSrc)
	cases := []struct {
		goal string
		want error
	}{
		{"path(n0, X)", nil},
		{"path(n0, X).", nil}, // trailing dot optional
		{"edge(n0, X)", ErrBasePredicate},
		{"path(X)", ErrArity},
		{"ghost(X)", ErrUnknownPredicate},
		{"path(X, Y) :- edge(X, Y)", ErrBadGoal},
		{"NOT path(n0, X)", ErrBadGoal},
		{"path(n0, X", ErrBadGoal},
	}
	for _, c := range cases {
		_, err := ParseGoal(prog, c.goal)
		if c.want == nil {
			if err != nil {
				t.Errorf("ParseGoal(%q) = %v, want ok", c.goal, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("ParseGoal(%q) = %v, want errors.Is(%v)", c.goal, err, c.want)
		}
		var ve *ValidationError
		if !errors.As(err, &ve) || ve.Kind != c.want {
			t.Errorf("ParseGoal(%q): errors.As(*ValidationError) kind = %v, want %v", c.goal, err, c.want)
		}
	}
}

func TestMatchGoalBindingSemantics(t *testing.T) {
	prog := mustParse(t, goalSrc)
	tuples := []eval.Tuple{
		eval.NewTuple("path", ast.Symbol("a"), ast.Symbol("b")),
		eval.NewTuple("path", ast.Symbol("a"), ast.Symbol("a")),
		eval.NewTuple("path", ast.Symbol("b"), ast.Symbol("c")),
	}
	cases := []struct {
		goal string
		want int
	}{
		{"path(a, X)", 2},
		{"path(X, Y)", 3},
		{"path(X, X)", 1}, // repeated variable: both args equal
		{"path(a, c)", 0},
		{"path(b, c)", 1},
	}
	for _, c := range cases {
		lit, err := ParseGoal(prog, c.goal)
		if err != nil {
			t.Fatalf("ParseGoal(%q): %v", c.goal, err)
		}
		if got := MatchGoal(lit, tuples); len(got) != c.want {
			t.Errorf("MatchGoal(%q) = %v, want %d tuples", c.goal, got, c.want)
		}
	}
}

// The canonical goal identity must be variable-name-blind but
// binding-pattern-sensitive: it is the serving layer's cache key.
func TestCanonicalGoalIdentity(t *testing.T) {
	prog := mustParse(t, goalSrc)
	key := func(goal string) string {
		lit, err := ParseGoal(prog, goal)
		if err != nil {
			t.Fatalf("ParseGoal(%q): %v", goal, err)
		}
		return CanonicalGoal(lit)
	}
	if key("path(n0, X)") != key("path(n0, Y)") {
		t.Error("variable renaming must not change the goal identity")
	}
	if key("path(X, X)") == key("path(X, Y)") {
		t.Error("repeated-variable pattern must have its own identity")
	}
	if key("path(n0, X)") == key("path(n1, X)") {
		t.Error("different constants must have different identities")
	}
	if key("path(n0, X)") == key("path(X, n0)") {
		t.Error("binding position must be part of the identity")
	}
}

// The injection entry points surface the typed sentinels end to end.
func TestInjectTypedErrors(t *testing.T) {
	e, _ := buildGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 17})
	cases := []struct {
		name string
		node nsim.NodeID
		tup  eval.Tuple
		want error
	}{
		{"bad node", -1, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)), ErrBadNode},
		{"not ground", 0, eval.NewTuple("ra", ast.Var("X"), ast.Int64(2)), ErrNotGround},
		{"derived", 0, eval.NewTuple("out", ast.Int64(1), ast.Int64(2)), ErrDerivedPredicate},
		{"unknown", 0, eval.NewTuple("nope", ast.Int64(1)), ErrUnknownPredicate},
		{"arity", 0, eval.NewTuple("ra", ast.Int64(1)), ErrArity},
	}
	for _, c := range cases {
		if err := e.Inject(c.node, c.tup); !errors.Is(err, c.want) {
			t.Errorf("%s: Inject err = %v, want errors.Is(%v)", c.name, err, c.want)
		}
		if err := e.InjectDeleteAt(10, c.node, c.tup); !errors.Is(err, c.want) {
			t.Errorf("%s: InjectDeleteAt err = %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}
}
