package core

import (
	"strings"
	"testing"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/gpa"
	"repro/internal/nsim"
)

// The four injection entry points must reject exactly the same bad
// inputs: a deletion API that validated less than Inject would let
// malformed tuples reach the generation path only on the delete side.
// Every case below must fail on all four, with the same complaint.
func TestInjectDeleteValidationParity(t *testing.T) {
	e, _ := buildGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 11})

	cases := []struct {
		name string
		node nsim.NodeID
		tup  eval.Tuple
		want string
	}{
		{"node negative", -1, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)), "out of range"},
		{"node past end", 16, eval.NewTuple("ra", ast.Int64(1), ast.Int64(2)), "out of range"},
		{"non-ground arg", 0, eval.NewTuple("ra", ast.Var("X"), ast.Int64(2)), "not ground"},
		{"derived predicate", 0, eval.NewTuple("out", ast.Int64(1), ast.Int64(2)), "derived predicate"},
		{"unknown predicate", 0, eval.NewTuple("nope", ast.Int64(1)), "not mentioned"},
		{"arity mismatch", 0, eval.NewTuple("ra", ast.Int64(1)), "arity mismatch"},
	}
	type entry struct {
		name string
		call func(nsim.NodeID, eval.Tuple) error
	}
	entries := []entry{
		{"Inject", e.Inject},
		{"InjectAt", func(n nsim.NodeID, tup eval.Tuple) error { return e.InjectAt(50, n, tup) }},
		{"InjectDelete", e.InjectDelete},
		{"InjectDeleteAt", func(n nsim.NodeID, tup eval.Tuple) error { return e.InjectDeleteAt(50, n, tup) }},
	}
	for _, c := range cases {
		var msgs []string
		for _, en := range entries {
			err := en.call(c.node, c.tup)
			if err == nil {
				t.Errorf("%s: %s accepted invalid input", c.name, en.name)
				continue
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("%s: %s error %q does not mention %q", c.name, en.name, err, c.want)
			}
			msgs = append(msgs, err.Error())
		}
		for _, m := range msgs[1:] {
			if m != msgs[0] {
				t.Errorf("%s: entry points disagree on the message: %q vs %q", c.name, msgs[0], m)
			}
		}
	}
}

// InjectDelete alone additionally requires the tuple to exist already;
// InjectDeleteAt defers that check to fire time (the tuple may well be
// injected between scheduling and firing), so it must accept the same
// call that InjectDelete rejects.
func TestInjectDeleteUnknownTuple(t *testing.T) {
	e, nw := buildGrid(t, 4, joinSrc, Config{Scheme: gpa.Perpendicular}, nsim.Config{Seed: 12})
	ghost := eval.NewTuple("ra", ast.Int64(7), ast.Int64(7))
	if err := e.InjectDelete(0, ghost); err == nil || !strings.Contains(err.Error(), "unknown base tuple") {
		t.Fatalf("InjectDelete of a never-injected tuple: err = %v, want unknown-base-tuple", err)
	}
	if err := e.InjectDeleteAt(500, 0, ghost); err != nil {
		t.Fatalf("InjectDeleteAt must defer existence to fire time, got %v", err)
	}
	if err := e.InjectAt(100, 0, ghost); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	// The deferred deletion found the by-then-existing tuple and removed it.
	if n := len(e.Derived("out/2")); n != 0 {
		t.Fatalf("expected empty derived set after deferred delete, got %d tuples", n)
	}
}
