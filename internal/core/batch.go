package core

import (
	"repro/internal/nsim"
)

// Batched link transport (Config.BatchLinks).
//
// The node runtime ships one tuple per radio message, which is the
// paper's accounting unit — but a real link layer would coalesce the
// store/join/result traffic a node emits within one tick into a single
// frame per destination. With BatchLinks on, sends are staged in a
// per-node outbox and flushed by a zero-delay self-timer that fires
// after every other event of the current tick (same time, later
// sequence number): everything the tick produced for one destination
// leaves as one kindBatch frame. A frame is accounted as one shared
// link header plus the sum of the per-item payloads (each item sheds
// its own header), so batching strictly reduces both the message count
// and the byte total whenever two items share a destination. Items
// that end up alone in their group are sent unchanged, keeping the
// off/on byte accounting comparable item by item.
//
// Delivery dispatches the items in staging order through the same
// handlers as the unbatched path. Because the per-hop delay is drawn
// once per frame instead of once per item, the interleaving of in-
// flight traffic differs from the unbatched run — the engine's
// finalize machinery (candidates buffered to deadlines, applied in
// update-stamp order) makes the final derived database independent of
// that interleaving, which TestBatchLinksEquivalence pins.

// linkHeader is the per-message link-layer header every wire-size
// estimate in this package already includes (the +8 at the send sites).
const linkHeader = 8

// kindBatch frames multiple staged items for one destination.
const kindBatch = "batch"

// timerFlush drains the outbox at the end of the current tick.
const timerFlush = "linkflush"

// batchItem is one staged tuple message inside a frame. Size is the
// item's unbatched wire size (header included), kept so the receiver
// and the accounting can recover the per-item payload size.
type batchItem struct {
	Kind    string
	Payload interface{}
	Size    int
}

// batchMsg is the frame payload.
type batchMsg struct {
	Items []batchItem
}

// BumpHop implements nsim.HopCounter by forwarding the stamp to every
// framed item, so batching keeps per-candidate hop counts intact.
func (bm *batchMsg) BumpHop() {
	for _, it := range bm.Items {
		if hc, ok := it.Payload.(nsim.HopCounter); ok {
			hc.BumpHop()
		}
	}
}

// outItem is a staged send. A consumed entry is marked by clearing its
// kind.
type outItem struct {
	dst     nsim.NodeID
	kind    string
	payload interface{}
	size    int
}

// send transmits a tuple message, staging it in the outbox when
// batching is on.
func (rt *nodeRT) send(dst nsim.NodeID, kind string, payload interface{}, size int) {
	if !rt.e.cfg.BatchLinks {
		rt.node.Send(dst, kind, payload, size)
		return
	}
	rt.outbox = append(rt.outbox, outItem{dst: dst, kind: kind, payload: payload, size: size})
	if !rt.flushArmed {
		rt.flushArmed = true
		rt.node.SetTimer(0, timerFlush, nil)
	}
}

// bcast broadcasts a tuple message, staging one copy per neighbor when
// batching is on so same-tick floods coalesce per link.
func (rt *nodeRT) bcast(kind string, payload interface{}, size int) {
	if !rt.e.cfg.BatchLinks {
		rt.node.Broadcast(kind, payload, size)
		return
	}
	for _, nb := range rt.node.Neighbors() {
		rt.send(nb, kind, payload, size)
	}
}

// flushOutbox groups the staged items by destination (in first-staged
// order) and transmits each group: singletons unchanged, larger groups
// as one frame of size header + Σ(itemSize − header).
func (rt *nodeRT) flushOutbox() {
	rt.flushArmed = false
	items := rt.outbox
	rt.outbox = rt.outbox[:0]
	for i := range items {
		if items[i].kind == "" {
			continue
		}
		dst := items[i].dst
		group := 1
		for j := i + 1; j < len(items); j++ {
			if items[j].kind != "" && items[j].dst == dst {
				group++
			}
		}
		if group == 1 {
			rt.node.Send(dst, items[i].kind, items[i].payload, items[i].size)
			items[i] = outItem{}
			continue
		}
		frame := &batchMsg{Items: make([]batchItem, 0, group)}
		size := linkHeader
		for j := i; j < len(items); j++ {
			if items[j].kind == "" || items[j].dst != dst {
				continue
			}
			frame.Items = append(frame.Items, batchItem{
				Kind: items[j].kind, Payload: items[j].payload, Size: items[j].size,
			})
			size += items[j].size - linkHeader
			items[j] = outItem{}
		}
		rt.node.Send(dst, kindBatch, frame, size)
	}
}
