GO ?= go

.PHONY: all build test vet race race-shards bench bench-shards-smoke joinbench bench-sim bench-serve bench-serve-smoke bench-check serve-smoke deploy-gate obs-guard obs-export-smoke fuzz-smoke profile trace-e1 verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# livenet is goroutine-per-node and the window/eval index structures are
# shared per node runtime; the serve layer multiplexes concurrent
# sessions and wire clients over one cluster; prove them race-free on
# every verify.
race:
	$(GO) test -race ./internal/livenet/... ./internal/core/... ./internal/serve/...

# The sharded scheduler runs shard windows on concurrent goroutines;
# prove the parallel path race-free on its gates: the nsim partition
# property tests, the E1/E5/E7 determinism gates, and the Shards=4
# differential sweep.
race-shards:
	$(GO) test -race -count=1 -run 'Shard' ./internal/nsim/ ./internal/experiments/ ./internal/check/

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Wall-clock-free stand-in for the sharded-scheduler bench: pins the
# deterministic fold count (barriers per 1k events) and the elision
# rate on the exact workload the benchcheck sharding gate measures.
bench-shards-smoke:
	$(GO) test -run 'TestShardBarrierBudget' -count=1 -v ./internal/experiments/

# Regenerate the headline indexed-vs-naive join metrics.
joinbench:
	$(GO) run ./cmd/snbench -joinjson BENCH_join.json

# Regenerate the simulator fast-path metrics (spatial index, typed event
# queue, batched links): substrate micro-benchmarks plus BENCH_sim.json.
bench-sim:
	$(GO) test -run '^$$' -bench 'Finalize|Events' -benchmem ./internal/nsim/
	$(GO) test -run '^$$' -bench 'E13' -benchmem .
	$(GO) run ./cmd/snbench -simjson BENCH_sim.json

# Regenerate the query-serving metrics (E16): qps through a
# serve.Session cold / from the result cache / under injection churn,
# plus the serve.query_latency quantiles.
bench-serve:
	$(GO) run ./cmd/snbench -servejson BENCH_serve.json

# Gate the regenerated simulator and serving metrics against the
# committed baselines: events/queries must match exactly, allocs/event
# within ±10%, throughput and qps within their timing-noise floors,
# serve p99 within the bucket-jump headroom. After an intentional perf
# change, refresh the baselines:
#   cp BENCH_sim.json BENCH_baseline.json
#   cp BENCH_serve.json BENCH_serve_baseline.json
bench-check: bench-sim bench-serve
	$(GO) run ./cmd/benchcheck -baseline BENCH_baseline.json -candidate BENCH_sim.json \
		-serve-baseline BENCH_serve_baseline.json -serve-candidate BENCH_serve.json

# Seconds-sized E16 variant: every serving-bench phase — cold, hot,
# concurrent readers, churn, churn-batched — at CI scale, asserting the
# structural properties (zero fallbacks, real coalescing, stale serves)
# rather than wall-clock rates.
bench-serve-smoke:
	$(GO) test -run 'TestServeBenchSmoke' -count=1 -v ./internal/experiments/servebench/

# End-to-end smoke of the serving stack: snlogd's exact wire surface —
# open, query, cache hit, inject, delete, explain, subscribe, stats —
# over a real TCP connection.
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -count=1 -v ./internal/serve/

# DeployGrid/DeployRandom are deprecated shims; deploy_compat_test.go
# pins them equivalent to Deploy(Grid(m)/Random(...)) and snlog.go
# defines them — no other call site may creep back in.
deploy-gate:
	@if grep -rn --include='*.go' -E '\bDeployGrid\(|\bDeployRandom\(' . \
		| grep -v -e '^\./snlog.go:' -e '^\./deploy_compat_test.go:'; then \
		echo 'deploy-gate: deprecated DeployGrid/DeployRandom call sites above — use Deploy(Grid(m), ...) / Deploy(Random(...), ...)'; \
		exit 1; \
	else \
		echo 'deploy-gate: no deprecated deploy call sites'; \
	fi

# The disabled-observability overhead guards: the E1 m=18 hot loop must
# stay at the PR 2 allocation baseline when Observe was never called,
# when metrics are on but provenance is off, and with the telemetry
# export layer linked in but no admin endpoint configured.
obs-guard:
	$(GO) test -run 'TestObsDisabledOverheadE1|TestProvDisabledOverheadE1|TestAdminDisabledOverheadE1' -v ./internal/experiments/

# End-to-end smoke of the live-telemetry surface: a serving session with
# the admin server on an ephemeral port, scraped over real HTTP —
# /healthz answers and /metrics parses as Prometheus text carrying the
# serve counter families and latency buckets.
obs-export-smoke:
	$(GO) test -run 'TestObsExportSmoke' -count=1 -v ./internal/obs/export/

# Short coverage-guided fuzz passes: the Datalog front-end (Parse must
# never panic, accepted programs round-trip) and the serve wire codec
# (newline-delimited JSON requests/responses, error codes and facts
# round-trip; no input wedges the decoder). The 5s budgets are smoke
# tests; run with a longer -fuzztime to actually hunt.
fuzz-smoke:
	$(GO) test ./internal/datalog/parser -run '^$$' -fuzz FuzzParse -fuzztime 5s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzWire -fuzztime 5s

# CPU + heap profiles of the two headline hot loops (the E1 join
# pipeline and the E13 batched-link simulator). Inspect with
# `go tool pprof profiles/<name>.cpu.pprof`.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkE1JoinApproaches' -benchtime 3x \
		-cpuprofile profiles/e1.cpu.pprof -memprofile profiles/e1.mem.pprof -o profiles/e1.test .
	$(GO) test -run '^$$' -bench 'BenchmarkE13Batching' -benchtime 3x \
		-cpuprofile profiles/e13.cpu.pprof -memprofile profiles/e13.mem.pprof -o profiles/e13.test .
	@echo "profiles written to profiles/ (go tool pprof profiles/e1.cpu.pprof)"

# Export an observed-E1 event trace as JSONL plus the counter snapshot,
# cross-checking trace aggregates against the registry.
trace-e1:
	$(GO) run ./cmd/snbench -trace trace_e1.jsonl

verify: build test vet race race-shards bench-shards-smoke bench-serve-smoke serve-smoke deploy-gate obs-guard obs-export-smoke fuzz-smoke bench-check
