GO ?= go

.PHONY: all build test vet race bench joinbench verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# livenet is goroutine-per-node and the window/eval index structures are
# shared per node runtime; prove them race-free on every verify.
race:
	$(GO) test -race ./internal/livenet/... ./internal/core/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the headline indexed-vs-naive join metrics.
joinbench:
	$(GO) run ./cmd/snbench -joinjson BENCH_join.json

verify: build test vet race
