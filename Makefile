GO ?= go

.PHONY: all build test vet race race-shards bench bench-shards-smoke joinbench bench-sim bench-check obs-guard fuzz-smoke profile trace-e1 verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# livenet is goroutine-per-node and the window/eval index structures are
# shared per node runtime; prove them race-free on every verify.
race:
	$(GO) test -race ./internal/livenet/... ./internal/core/...

# The sharded scheduler runs shard windows on concurrent goroutines;
# prove the parallel path race-free on its gates: the nsim partition
# property tests, the E1/E5/E7 determinism gates, and the Shards=4
# differential sweep.
race-shards:
	$(GO) test -race -count=1 -run 'Shard' ./internal/nsim/ ./internal/experiments/ ./internal/check/

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Wall-clock-free stand-in for the sharded-scheduler bench: pins the
# deterministic fold count (barriers per 1k events) and the elision
# rate on the exact workload the benchcheck sharding gate measures.
bench-shards-smoke:
	$(GO) test -run 'TestShardBarrierBudget' -count=1 -v ./internal/experiments/

# Regenerate the headline indexed-vs-naive join metrics.
joinbench:
	$(GO) run ./cmd/snbench -joinjson BENCH_join.json

# Regenerate the simulator fast-path metrics (spatial index, typed event
# queue, batched links): substrate micro-benchmarks plus BENCH_sim.json.
bench-sim:
	$(GO) test -run '^$$' -bench 'Finalize|Events' -benchmem ./internal/nsim/
	$(GO) test -run '^$$' -bench 'E13' -benchmem .
	$(GO) run ./cmd/snbench -simjson BENCH_sim.json

# Gate the regenerated simulator metrics against the committed
# baseline: events must match exactly, allocs/event within ±10%,
# throughput within the timing-noise floor. After an intentional perf
# change, refresh the baseline: cp BENCH_sim.json BENCH_baseline.json.
bench-check: bench-sim
	$(GO) run ./cmd/benchcheck -baseline BENCH_baseline.json -candidate BENCH_sim.json

# The disabled-observability overhead guards: the E1 m=18 hot loop must
# stay at the PR 2 allocation baseline both when Observe was never
# called and when metrics are on but provenance is off.
obs-guard:
	$(GO) test -run 'TestObsDisabledOverheadE1|TestProvDisabledOverheadE1' -v ./internal/experiments/

# A short coverage-guided fuzz pass over the Datalog front-end: Parse
# must never panic, and everything it accepts must pretty-print to
# re-parseable source and survive semantic analysis. The 5s budget is
# a smoke test; run with a longer -fuzztime to actually hunt.
fuzz-smoke:
	$(GO) test ./internal/datalog/parser -run '^$$' -fuzz FuzzParse -fuzztime 5s

# CPU + heap profiles of the two headline hot loops (the E1 join
# pipeline and the E13 batched-link simulator). Inspect with
# `go tool pprof profiles/<name>.cpu.pprof`.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkE1JoinApproaches' -benchtime 3x \
		-cpuprofile profiles/e1.cpu.pprof -memprofile profiles/e1.mem.pprof -o profiles/e1.test .
	$(GO) test -run '^$$' -bench 'BenchmarkE13Batching' -benchtime 3x \
		-cpuprofile profiles/e13.cpu.pprof -memprofile profiles/e13.mem.pprof -o profiles/e13.test .
	@echo "profiles written to profiles/ (go tool pprof profiles/e1.cpu.pprof)"

# Export an observed-E1 event trace as JSONL plus the counter snapshot,
# cross-checking trace aggregates against the registry.
trace-e1:
	$(GO) run ./cmd/snbench -trace trace_e1.jsonl

verify: build test vet race race-shards bench-shards-smoke obs-guard fuzz-smoke bench-check
