GO ?= go

.PHONY: all build test vet race bench joinbench bench-sim verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# livenet is goroutine-per-node and the window/eval index structures are
# shared per node runtime; prove them race-free on every verify.
race:
	$(GO) test -race ./internal/livenet/... ./internal/core/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the headline indexed-vs-naive join metrics.
joinbench:
	$(GO) run ./cmd/snbench -joinjson BENCH_join.json

# Regenerate the simulator fast-path metrics (spatial index, typed event
# queue, batched links): substrate micro-benchmarks plus BENCH_sim.json.
bench-sim:
	$(GO) test -run '^$$' -bench 'Finalize|Events' -benchmem ./internal/nsim/
	$(GO) test -run '^$$' -bench 'E13' -benchmem .
	$(GO) run ./cmd/snbench -simjson BENCH_sim.json

verify: build test vet race bench-sim
