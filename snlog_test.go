package snlog

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestParseAndCheck(t *testing.T) {
	res, err := Check(`
.base veh/3.
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stratified {
		t.Error("program should be stratified")
	}
}

func TestCheckRejectsUnsafe(t *testing.T) {
	if _, err := Check(`p(X) :- q(Y).`); err == nil {
		t.Error("unsafe program accepted")
	}
}

func TestEvalFacade(t *testing.T) {
	db, err := Eval(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`, []Tuple{
		NewTuple("edge", Sym("a"), Sym("b")),
		NewTuple("edge", Sym("b"), Sym("c")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Count("path/2") != 3 {
		t.Errorf("path = %v", db.Tuples("path/2"))
	}
}

func TestMagicRewriteFacade(t *testing.T) {
	out, ans, err := MagicRewrite(`
anc(X, Y) :- par(X, Y).
anc(X, Z) :- par(X, Y), anc(Y, Z).
`, "anc(a, X)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m_anc_bf") {
		t.Errorf("rewritten program missing magic predicate:\n%s", out)
	}
	if ans != "ans_anc/2" {
		t.Errorf("answer pred = %s", ans)
	}
}

func TestDeployGridAlert(t *testing.T) {
	c, err := Deploy(Grid(6), `
.base temp/2.
alert(N, T) :- temp(N, T), T > 90.
.query alert/2.
`, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(12, NewTuple("temp", Sym("n12"), Int(95)))
	c.Inject(20, NewTuple("temp", Sym("n20"), Int(50)))
	c.Run()
	alerts := c.Results("alert/2")
	if len(alerts) != 1 || alerts[0].Args[1].Int != 95 {
		t.Errorf("alerts = %v", alerts)
	}
	st := c.Stats()
	if st.Messages == 0 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeployRandomTopology(t *testing.T) {
	c, err := Deploy(Random(40, 8, 2.6), `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	c.InjectAt(0, 3, NewTuple("ra", Int(1), Int(2)))
	c.InjectAt(5, 29, NewTuple("rb", Int(2), Int(3)))
	c.Run()
	if n := len(c.Results("out/2")); n != 1 {
		t.Errorf("out = %v", c.Results("out/2"))
	}
}

func TestDeployDeletion(t *testing.T) {
	c, err := Deploy(Grid(5), `
.base s/1.
d(X) :- s(X).
`, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	tup := NewTuple("s", Int(7))
	c.InjectAt(0, 4, tup)
	c.DeleteAt(4000, 4, tup)
	c.Run()
	if n := len(c.Results("d/1")); n != 0 {
		t.Errorf("d should be retracted: %v", c.Results("d/1"))
	}
}

func TestDeployGridSPTViaAPI(t *testing.T) {
	m := 4
	src := `
.base g/2.
.store g/2 at 0 hops 1.
.store j/2 at 0 hops 1.
.store jp/2 at 0.
j(n0, 0).
jp(Y, D1) :- j(Y, Dp), D1 = D + 1, D1 > Dp, j(X, D), g(X, Y).
j(Y, D1) :- g(X, Y), j(X, D), D1 = D + 1, NOT jp(Y, D1).
.query j/2.
`
	c, err := Deploy(Grid(m), src, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Edges are known locally at each node.
	for _, n := range c.Network.Nodes() {
		for _, nb := range n.Neighbors() {
			c.InjectAt(0, int(n.ID), NewTuple("g", NodeSym(int(n.ID)), NodeSym(int(nb))))
		}
	}
	c.Run()
	j := c.Results("j/2")
	if len(j) != m*m {
		t.Fatalf("j = %v", j)
	}
	for _, tup := range j {
		var id int
		fmt.Sscanf(tup.Args[0].Str, "n%d", &id)
		p, q := id%m, id/m
		if tup.Args[1].Int != int64(p+q) {
			t.Errorf("depth(%s) = %d, want %d", tup.Args[0].Str, tup.Args[1].Int, p+q)
		}
	}
}

func TestStatsByKind(t *testing.T) {
	c, err := Deploy(Grid(5), `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	c.InjectAt(0, 2, NewTuple("ra", Int(1), Int(2)))
	c.InjectAt(5, 17, NewTuple("rb", Int(2), Int(3)))
	c.Run()
	st := c.Stats()
	if st.ByKind["store"] == 0 || st.ByKind["join"] == 0 {
		t.Errorf("by-kind stats = %v", st.ByKind)
	}
	if st.MaxMemory == 0 {
		t.Error("memory stats missing")
	}
}

func TestGridIDHelper(t *testing.T) {
	if GridID(5, 2, 3) != 17 {
		t.Errorf("GridID = %d", GridID(5, 2, 3))
	}
}

func TestRunUntilPartialProgress(t *testing.T) {
	c, err := Deploy(Grid(5), `
.base s/1.
d(X) :- s(X).
`, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	c.InjectAt(0, 3, NewTuple("s", Int(1)))
	// Before the storage delay elapses, nothing is derived.
	c.RunUntil(5)
	if len(c.Results("d/1")) != 0 {
		t.Error("derived too early")
	}
	c.Run()
	if len(c.Results("d/1")) != 1 {
		t.Error("not derived after full run")
	}
}

func TestMaintainerFacade(t *testing.T) {
	m, err := NewMaintainer(`
cov(L) :- veh(enemy, L), veh(friendly, L).
uncov(L) :- NOT cov(L), veh(enemy, L).
`, SetOfDerivations)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(NewTuple("veh", Sym("enemy"), Int(1))); err != nil {
		t.Fatal(err)
	}
	if m.DB().Count("uncov/1") != 1 {
		t.Errorf("uncov = %v", m.DB().Tuples("uncov/1"))
	}
	tree, err := m.ProofTree(NewTuple("uncov", Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsLeaf() {
		t.Error("derived tuple should have children")
	}
	if _, err := NewMaintainer(`broken(`, Counting); err == nil {
		t.Error("parse error should surface")
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	if _, err := Parse(`p(`); err == nil {
		t.Error("Parse should surface syntax errors")
	}
	if _, err := Eval(`p(X) :- q(Y).`, nil); err == nil {
		t.Error("Eval should surface unsafe programs")
	}
	if _, _, err := MagicRewrite(`anc(X,Y) :- par(X,Y).`, "not a literal ("); err == nil {
		t.Error("MagicRewrite should reject bad query literals")
	}
	if _, _, err := MagicRewrite(`anc(X,Y) :- par(X,Y).`, "par(a, X)"); err == nil {
		t.Error("MagicRewrite should reject base-predicate queries")
	}
	if _, err := Deploy(Grid(4), `p(`); err != nil {
		_ = err
	} else {
		t.Error("Deploy should surface parse errors")
	}
	if _, err := Deploy(Random(20, 100, 0.1), `d(X) :- s(X).`); err == nil {
		t.Error("Deploy should surface disconnected placements")
	}
}

func TestClusterAggregateFacade(t *testing.T) {
	c, err := Deploy(Grid(5), `
.base reading/2.
coldest(min<T>) :- reading(N, T).
`, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.InjectAt(int64(i*3), i*5, NewTuple("reading", NodeSym(i*5), Int(int64(50+i))))
	}
	if err := c.CollectAggregate(2000, "coldest/1", 0); err != nil {
		t.Fatal(err)
	}
	c.Run()
	got := c.AggregateResult("coldest/1")
	if len(got) != 1 || got[0].Args[0].Int != 50 {
		t.Errorf("coldest = %v", got)
	}
	if err := c.CollectAggregate(0, "missing/1", 0); err == nil {
		t.Error("unknown aggregate should error")
	}
}

func TestDeployWithProvenance(t *testing.T) {
	c, err := Deploy(Grid(5), `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
.query out/2.
`, WithSeed(7), WithProvenance())
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(3, NewTuple("ra", Int(1), Int(2)))
	c.Inject(9, NewTuple("rb", Int(2), Int(3)))
	c.Run()
	if got := c.Results("out/2"); len(got) != 1 {
		t.Fatalf("results = %v", got)
	}

	tree, err := c.Explain("out", Int(1), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	rendered := tree.String()
	for _, part := range []string{"out/2|i1,i3", "<- rule", "ra/2|i1,i2", "rb/2|i2,i3", "[base]"} {
		if !strings.Contains(rendered, part) {
			t.Errorf("explain render missing %q:\n%s", part, rendered)
		}
	}

	bl, err := c.Blame("out", Int(1), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Steps) == 0 || !strings.Contains(bl.String(), "critical path") {
		t.Fatalf("blame = %+v", bl)
	}

	var dot, jsonl strings.Builder
	if err := c.WriteExplainDOT(&dot, "out", Int(1), Int(3)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph explain") {
		t.Errorf("DOT output:\n%s", dot.String())
	}
	if err := c.WriteExplainJSONL(&jsonl, "out", Int(1), Int(3)); err != nil {
		t.Fatal(err)
	}
	// Root tuple, one derivation node, two base leaves.
	if n := strings.Count(strings.TrimSpace(jsonl.String()), "\n") + 1; n != 4 {
		t.Errorf("JSONL export has %d lines, want 4:\n%s", n, jsonl.String())
	}

	// The registry gauges report the captured graph.
	snap := c.Snapshot()
	if snap.Get("core.prov.live") == 0 || snap.Get("core.prov.captured") == 0 {
		t.Errorf("provenance gauges missing: live=%d captured=%d",
			snap.Get("core.prov.live"), snap.Get("core.prov.captured"))
	}
}

func TestExplainWithoutProvenanceErrors(t *testing.T) {
	c, err := Deploy(Grid(4), `
.base a/2.
d(X, Y) :- a(X, Y).
.query d/2.
`, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if _, err := c.Explain("d", Int(1), Int(2)); err == nil {
		t.Fatal("Explain without WithProvenance should error")
	}
}

// Cluster.Query and the re-exported validation sentinels: goals are
// validated on the same core.ParseGoal path the serving layer uses, so
// errors match with errors.Is at the facade too.
func TestClusterQueryFacade(t *testing.T) {
	c, err := Deploy(Grid(4), `
.base edge/2.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
.query path/2.
`, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(0, NewTuple("edge", Sym("a"), Sym("b")))
	c.Inject(1, NewTuple("edge", Sym("b"), Sym("c")))
	c.Run()
	got, err := c.Query("path(a, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("path(a, X) = %v", got)
	}
	if got, err := c.Query("path(a, c)"); err != nil || len(got) != 1 {
		t.Errorf("ground query = %v, %v", got, err)
	}
	cases := []struct {
		goal string
		want error
	}{
		{"edge(a, X)", ErrBasePredicate},
		{"path(X)", ErrArity},
		{"ghost(X)", ErrUnknownPredicate},
		{"path(X", ErrBadGoal},
	}
	for _, tc := range cases {
		if _, err := c.Query(tc.goal); !errors.Is(err, tc.want) {
			t.Errorf("Query(%q) = %v, want errors.Is(%v)", tc.goal, err, tc.want)
		}
	}
	// Injection sentinels at the facade.
	if err := c.Inject(0, NewTuple("path", Sym("a"), Sym("b"))); !errors.Is(err, ErrDerivedPredicate) {
		t.Errorf("Inject derived = %v", err)
	}
	if err := c.Inject(99, NewTuple("edge", Sym("a"), Sym("b"))); !errors.Is(err, ErrBadNode) {
		t.Errorf("Inject bad node = %v", err)
	}
}
