// Command snbench regenerates every table and figure of the paper's
// evaluation section (experiments E1..E14 of DESIGN.md) and prints them
// in the plain-text form recorded in EXPERIMENTS.md.
//
// Usage:
//
//	snbench            # run everything
//	snbench -only E5   # run one experiment
//	snbench -quick     # smaller parameters (CI-sized)
//	snbench -joinjson BENCH_join.json   # indexed-vs-naive join A/B
//	snbench -simjson BENCH_sim.json     # simulator fast-path A/B
//	snbench -servejson BENCH_serve.json # query-serving qps + latency (E16)
//	snbench -trace e1.jsonl             # observed E1: JSONL trace + counters
//	snbench -explain 'j(n3,3)'          # provenance: why is this tuple derived?
//	snbench -hist                       # settle/hop/fan-in/queue histograms
//
// Trace export runs the E1 two-stream workload with the observability
// layer attached, writes the (optionally filtered) event trace as
// JSONL, prints the counter snapshot, and cross-checks the trace's
// aggregated send/recv/drop counts against the registry counters —
// exiting nonzero on any disagreement.
//
// Explain runs the E5 logicJ shortest-path program with provenance
// capture on and prints the queried tuple's derivation tree (down to
// the injected adjacency facts) and its critical path — which chain of
// derivations it waited on, with per-edge hops and latency. Add
// -explain-dot tree.dot for a Graphviz rendering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/datalog/parser"
	"repro/internal/experiments"
	"repro/internal/experiments/servebench"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
)

func main() {
	only := flag.String("only", "", "run only this experiment (E1..E14)")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	joinJSON := flag.String("joinjson", "", "write the indexed-vs-naive join benchmark to this JSON file and exit")
	simJSON := flag.String("simjson", "", "write the simulator fast-path benchmark to this JSON file and exit")
	serveJSON := flag.String("servejson", "", "write the query-serving benchmark (E16: qps + latency quantiles) to this JSON file and exit")
	traceOut := flag.String("trace", "", "write an observed-E1 JSONL trace to this file and exit")
	traceKinds := flag.String("trace-kinds", "", "comma-separated event kinds to export (send,recv,drop,derive,delete,settle,crash,recover,linkdown,linkup,dup,reorder); empty = all")
	traceNode := flag.Int("trace-node", -1, "export only events touching this node (-1 = all)")
	tracePred := flag.String("trace-pred", "", "export only events for this predicate / wire kind")
	explain := flag.String("explain", "", "explain a derived tuple of the E5 shortest-path run, e.g. 'j(n3,3)': print its derivation tree and critical path, then exit")
	explainDOT := flag.String("explain-dot", "", "with -explain, also write the derivation DAG as Graphviz DOT to this file")
	hist := flag.Bool("hist", false, "run the observed E1 workload with provenance attached and print the latency/hop/fan-in/queue histograms, then exit")
	shards := flag.Int("shards", 0, "with -simjson, sweep the sharded scheduler over {1, N} instead of the default {1, 2, 4, 8}")
	flag.Parse()

	if *explain != "" {
		if err := runExplain(*explain, *explainDOT, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *hist {
		if err := runHist(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		if err := runTrace(*traceOut, *traceKinds, *traceNode, *tracePred, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *simJSON != "" {
		reps := 5
		if *quick {
			reps = 2
		}
		res := experiments.SimBench(reps, *shards)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*simJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		last := res.Finalize[len(res.Finalize)-1]
		bat := res.Batching[0]
		fmt.Printf("sim A/B: finalize n=%d %.1fx, %.0f events/s vs %.0f legacy (%.2fx), %.2f vs %.2f allocs/event (-%.0f%%), batching -%.0f%% msgs\n",
			last.Nodes, last.Speedup,
			res.EventsPerSecFast, res.EventsPerSecLegacy, res.EventThroughputGain,
			res.AllocsPerEventFast, res.AllocsPerEventLegacy, res.AllocReduxPct,
			bat.MsgReduxPct)
		return
	}

	if *serveJSON != "" {
		reps := 3
		if *quick {
			reps = 1
		}
		res, err := servebench.Run(reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*serveJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serve: %d queries — cold %.0f q/s, hot %.0f q/s, churn %.0f q/s, hit rate %.1f%%, p50 %dµs p99 %dµs, %d fallbacks\n",
			res.Queries, res.ColdQPS, res.HotQPS, res.ChurnQPS,
			res.CacheHitRatePct, res.P50Us, res.P99Us, res.Fallbacks)
		return
	}

	if *joinJSON != "" {
		reps := 10
		if *quick {
			reps = 3
		}
		res := experiments.JoinBench(reps)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*joinJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("join A/B: centralized %.2fms indexed vs %.2fms naive (%.2fx), distributed %.2fms vs %.2fms, %d msgs both\n",
			res.CentralizedIndexedMs, res.CentralizedNaiveMs, res.CentralizedSpeedup,
			res.DistributedIndexedMs, res.DistributedNaiveMs, res.DistributedMessages)
		return
	}

	type exp struct {
		id  string
		run func() *metrics.Table
	}
	full := !*quick
	pick := func(a, b int) int {
		if full {
			return a
		}
		return b
	}
	suite := []exp{
		{"E1", func() *metrics.Table {
			if full {
				return experiments.E1JoinApproaches([]int{6, 10, 14, 18}, 20)
			}
			return experiments.E1JoinApproaches([]int{6, 10}, 10)
		}},
		{"E2", func() *metrics.Table {
			return experiments.E2LoadBalance(pick(12, 8), pick(40, 20))
		}},
		{"E3", func() *metrics.Table {
			return experiments.E3MultiStream(pick(10, 6), []int{2, 3, 4}, pick(6, 3))
		}},
		{"E4", func() *metrics.Table {
			return experiments.E4Spatial(pick(12, 8), []float64{0, 8, 4, 2}, pick(12, 6))
		}},
		{"E5", func() *metrics.Table {
			if full {
				return experiments.E5SPT([]int{5, 7, 10, 14})
			}
			return experiments.E5SPT([]int{4, 6})
		}},
		{"E6", func() *metrics.Table {
			return experiments.E6Deletions(pick(300, 100), []float64{0.1, 0.3, 0.5})
		}},
		{"E7", func() *metrics.Table {
			return experiments.E7Loss(pick(10, 6), []float64{0, 0.05, 0.1, 0.2, 0.3}, pick(20, 10))
		}},
		{"E8", func() *metrics.Table {
			if full {
				return experiments.E8Latency([]int{6, 10, 14})
			}
			return experiments.E8Latency([]int{6})
		}},
		{"E9", func() *metrics.Table {
			return experiments.E9Memory(pick(8, 6))
		}},
		{"E10", func() *metrics.Table {
			return experiments.E10Magic(pick(8, 4), pick(12, 8))
		}},
		{"E11", func() *metrics.Table {
			if full {
				return experiments.E11Aggregation([]int{6, 10, 14})
			}
			return experiments.E11Aggregation([]int{6})
		}},
		{"E12", func() *metrics.Table {
			return experiments.E12Lifetime(pick(10, 8), 500, pick(150, 60))
		}},
		{"E13", func() *metrics.Table {
			if full {
				return experiments.E13Batching([]int{6, 10, 14}, 6, 4)
			}
			return experiments.E13Batching([]int{6, 10}, 4, 3)
		}},
		{"E14", func() *metrics.Table {
			if full {
				return experiments.E14Churn([]int{0, 1, 2, 4, 8}, 6)
			}
			return experiments.E14Churn([]int{0, 2, 4}, 3)
		}},
	}

	ran := 0
	for _, e := range suite {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		tbl := e.run()
		fmt.Printf("=== %s (%.2fs) ===\n", e.id, time.Since(start).Seconds())
		tbl.Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snbench: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}

// runTrace runs the observed E1 workload, exports the filtered JSONL
// trace, prints the counter snapshot, and verifies trace/counter
// agreement.
func runTrace(path, kinds string, node int, pred string, quick bool) error {
	m, tuples := 10, 20
	if quick {
		m, tuples = 6, 10
	}
	// Capacity covers every event of the full E1 run (the m=10 workload
	// records ~20k events) so the JSONL export is complete; the counter
	// cross-check below uses lifetime totals and holds at any capacity.
	res := experiments.TraceE1(m, tuples, 1<<19)

	f := obs.Filter{Node: obs.AnyNode, Pred: pred}
	if node >= 0 {
		f.Node = int32(node)
	}
	if kinds != "" {
		for _, name := range strings.Split(kinds, ",") {
			k, ok := obs.ParseKind(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown trace kind %q", name)
			}
			f.Kinds = append(f.Kinds, k)
		}
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	written, err := res.Trace.WriteJSONL(out, f)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	snap := res.Registry.Snapshot()
	metrics.SnapshotTable(
		fmt.Sprintf("observed E1 (grid %dx%d, %d tuples/stream)", m, m, tuples),
		snap.Counters, "nsim.", "core.", "routing.").Render(os.Stdout)
	fmt.Printf("\ntrace: %d events recorded, %d evicted, %d exported to %s\n",
		res.Trace.Total(), res.Trace.Dropped(), written, path)

	// The trace and the counters watch the same hooks; any disagreement
	// means a recording path was skipped or double-fired. Lifetime
	// totals survive ring eviction, so this holds even if the ring
	// wrapped (CountKinds would undercount then).
	agg := res.Trace.TotalKinds()
	checks := []struct {
		kind    obs.EventKind
		counter string
	}{
		{obs.EvSend, "nsim.messages"},
		{obs.EvRecv, "nsim.received"},
		{obs.EvDrop, "nsim.dropped"},
		{obs.EvDerive, "core.derivations"},
		{obs.EvDelete, "core.deletions"},
		{obs.EvSettle, "core.settles"},
	}
	for _, c := range checks {
		if agg[c.kind] != snap.Get(c.counter) {
			return fmt.Errorf("trace/counter mismatch: %d %s events vs %s=%d",
				agg[c.kind], c.kind, c.counter, snap.Get(c.counter))
		}
	}
	fmt.Println("trace/counter cross-check: send, recv, drop, derive, delete, settle all agree")
	return nil
}

// runExplain runs the provenance-enabled E5 shortest-path workload and
// explains one derived tuple, named as a ground literal ('j(n3,3)').
func runExplain(lit, dotPath string, quick bool) error {
	m := 5
	if quick {
		m = 4
	}
	r, err := parser.ParseRule(lit + ".")
	if err != nil {
		return fmt.Errorf("bad -explain literal %q (want e.g. 'j(n3,3)'): %v", lit, err)
	}
	if len(r.Body) > 0 || r.Head.Negated {
		return fmt.Errorf("bad -explain literal %q: give one positive ground literal", lit)
	}

	res := experiments.ProvE5(m)
	snap := res.Registry.Snapshot()
	fmt.Printf("E5 logicJ shortest-path tree, %dx%d grid: %d derivations captured, %d live\n\n",
		m, m, snap.Get("core.prov.captured"), snap.Get("core.prov.live"))

	tree, err := res.Engine.Explain(r.Head.PredKey(), r.Head.Args...)
	if err != nil {
		return err
	}
	fmt.Print(tree.String())

	if bl, err := res.Engine.Blame(r.Head.PredKey(), r.Head.Args...); err == nil {
		fmt.Println()
		fmt.Print(bl.String())
	}

	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		err = provenance.WriteDOT(f, tree)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nDOT graph written to %s\n", dotPath)
	}
	return nil
}

// runHist runs the observed E1 workload with provenance attached and
// renders the four histogram families.
func runHist(quick bool) error {
	m, tuples := 10, 20
	if quick {
		m, tuples = 6, 10
	}
	res := experiments.TraceE1Prov(m, tuples, 1)
	fmt.Printf("observed E1 (grid %dx%d, %d tuples/stream), histograms:\n\n", m, m, tuples)
	for _, name := range []string{"core.settle_ticks", "core.result_hops", "core.fanin", "nsim.queue_hist"} {
		h := res.Registry.Histogram(name, nil)
		fmt.Printf("%s: count=%d p50=%d p95=%d max=%d\n",
			name, h.Count(), h.Quantile(0.50), h.Quantile(0.95), h.Max())
		bounds, counts := h.Buckets()
		peak := int64(1)
		for _, c := range counts {
			if c > peak {
				peak = c
			}
		}
		for i, c := range counts {
			if c == 0 {
				continue
			}
			label := "overflow"
			if i < len(bounds) {
				label = fmt.Sprintf("<= %d", bounds[i])
			}
			bar := strings.Repeat("#", int(1+c*40/peak))
			fmt.Printf("  %10s  %-41s %d\n", label, bar, c)
		}
		fmt.Println()
	}
	return nil
}
