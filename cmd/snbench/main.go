// Command snbench regenerates every table and figure of the paper's
// evaluation section (experiments E1..E13 of DESIGN.md) and prints them
// in the plain-text form recorded in EXPERIMENTS.md.
//
// Usage:
//
//	snbench            # run everything
//	snbench -only E5   # run one experiment
//	snbench -quick     # smaller parameters (CI-sized)
//	snbench -joinjson BENCH_join.json   # indexed-vs-naive join A/B
//	snbench -simjson BENCH_sim.json     # simulator fast-path A/B
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	only := flag.String("only", "", "run only this experiment (E1..E13)")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	joinJSON := flag.String("joinjson", "", "write the indexed-vs-naive join benchmark to this JSON file and exit")
	simJSON := flag.String("simjson", "", "write the simulator fast-path benchmark to this JSON file and exit")
	flag.Parse()

	if *simJSON != "" {
		reps := 5
		if *quick {
			reps = 2
		}
		res := experiments.SimBench(reps)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*simJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		last := res.Finalize[len(res.Finalize)-1]
		bat := res.Batching[0]
		fmt.Printf("sim A/B: finalize n=%d %.1fx, %.0f events/s vs %.0f legacy (%.2fx), %.2f vs %.2f allocs/event (-%.0f%%), batching -%.0f%% msgs\n",
			last.Nodes, last.Speedup,
			res.EventsPerSecFast, res.EventsPerSecLegacy, res.EventThroughputGain,
			res.AllocsPerEventFast, res.AllocsPerEventLegacy, res.AllocReduxPct,
			bat.MsgReduxPct)
		return
	}

	if *joinJSON != "" {
		reps := 10
		if *quick {
			reps = 3
		}
		res := experiments.JoinBench(reps)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*joinJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("join A/B: centralized %.2fms indexed vs %.2fms naive (%.2fx), distributed %.2fms vs %.2fms, %d msgs both\n",
			res.CentralizedIndexedMs, res.CentralizedNaiveMs, res.CentralizedSpeedup,
			res.DistributedIndexedMs, res.DistributedNaiveMs, res.DistributedMessages)
		return
	}

	type exp struct {
		id  string
		run func() *metrics.Table
	}
	full := !*quick
	pick := func(a, b int) int {
		if full {
			return a
		}
		return b
	}
	suite := []exp{
		{"E1", func() *metrics.Table {
			if full {
				return experiments.E1JoinApproaches([]int{6, 10, 14, 18}, 20)
			}
			return experiments.E1JoinApproaches([]int{6, 10}, 10)
		}},
		{"E2", func() *metrics.Table {
			return experiments.E2LoadBalance(pick(12, 8), pick(40, 20))
		}},
		{"E3", func() *metrics.Table {
			return experiments.E3MultiStream(pick(10, 6), []int{2, 3, 4}, pick(6, 3))
		}},
		{"E4", func() *metrics.Table {
			return experiments.E4Spatial(pick(12, 8), []float64{0, 8, 4, 2}, pick(12, 6))
		}},
		{"E5", func() *metrics.Table {
			if full {
				return experiments.E5SPT([]int{5, 7, 10, 14})
			}
			return experiments.E5SPT([]int{4, 6})
		}},
		{"E6", func() *metrics.Table {
			return experiments.E6Deletions(pick(300, 100), []float64{0.1, 0.3, 0.5})
		}},
		{"E7", func() *metrics.Table {
			return experiments.E7Loss(pick(10, 6), []float64{0, 0.05, 0.1, 0.2, 0.3}, pick(20, 10))
		}},
		{"E8", func() *metrics.Table {
			if full {
				return experiments.E8Latency([]int{6, 10, 14})
			}
			return experiments.E8Latency([]int{6})
		}},
		{"E9", func() *metrics.Table {
			return experiments.E9Memory(pick(8, 6))
		}},
		{"E10", func() *metrics.Table {
			return experiments.E10Magic(pick(8, 4), pick(12, 8))
		}},
		{"E11", func() *metrics.Table {
			if full {
				return experiments.E11Aggregation([]int{6, 10, 14})
			}
			return experiments.E11Aggregation([]int{6})
		}},
		{"E12", func() *metrics.Table {
			return experiments.E12Lifetime(pick(10, 8), 500, pick(150, 60))
		}},
		{"E13", func() *metrics.Table {
			if full {
				return experiments.E13Batching([]int{6, 10, 14}, 6, 4)
			}
			return experiments.E13Batching([]int{6, 10}, 4, 3)
		}},
	}

	ran := 0
	for _, e := range suite {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		tbl := e.run()
		fmt.Printf("=== %s (%.2fs) ===\n", e.id, time.Since(start).Seconds())
		tbl.Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snbench: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
