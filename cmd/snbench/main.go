// Command snbench regenerates every table and figure of the paper's
// evaluation section (experiments E1..E14 of DESIGN.md) and prints them
// in the plain-text form recorded in EXPERIMENTS.md.
//
// Usage:
//
//	snbench            # run everything
//	snbench -only E5   # run one experiment
//	snbench -quick     # smaller parameters (CI-sized)
//	snbench -joinjson BENCH_join.json   # indexed-vs-naive join A/B
//	snbench -simjson BENCH_sim.json     # simulator fast-path A/B
//	snbench -trace e1.jsonl             # observed E1: JSONL trace + counters
//
// Trace export runs the E1 two-stream workload with the observability
// layer attached, writes the (optionally filtered) event trace as
// JSONL, prints the counter snapshot, and cross-checks the trace's
// aggregated send/recv/drop counts against the registry counters —
// exiting nonzero on any disagreement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	only := flag.String("only", "", "run only this experiment (E1..E14)")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	joinJSON := flag.String("joinjson", "", "write the indexed-vs-naive join benchmark to this JSON file and exit")
	simJSON := flag.String("simjson", "", "write the simulator fast-path benchmark to this JSON file and exit")
	traceOut := flag.String("trace", "", "write an observed-E1 JSONL trace to this file and exit")
	traceKinds := flag.String("trace-kinds", "", "comma-separated event kinds to export (send,recv,drop,derive,delete,settle,crash,recover,linkdown,linkup,dup,reorder); empty = all")
	traceNode := flag.Int("trace-node", -1, "export only events touching this node (-1 = all)")
	tracePred := flag.String("trace-pred", "", "export only events for this predicate / wire kind")
	flag.Parse()

	if *traceOut != "" {
		if err := runTrace(*traceOut, *traceKinds, *traceNode, *tracePred, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *simJSON != "" {
		reps := 5
		if *quick {
			reps = 2
		}
		res := experiments.SimBench(reps)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*simJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		last := res.Finalize[len(res.Finalize)-1]
		bat := res.Batching[0]
		fmt.Printf("sim A/B: finalize n=%d %.1fx, %.0f events/s vs %.0f legacy (%.2fx), %.2f vs %.2f allocs/event (-%.0f%%), batching -%.0f%% msgs\n",
			last.Nodes, last.Speedup,
			res.EventsPerSecFast, res.EventsPerSecLegacy, res.EventThroughputGain,
			res.AllocsPerEventFast, res.AllocsPerEventLegacy, res.AllocReduxPct,
			bat.MsgReduxPct)
		return
	}

	if *joinJSON != "" {
		reps := 10
		if *quick {
			reps = 3
		}
		res := experiments.JoinBench(reps)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*joinJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("join A/B: centralized %.2fms indexed vs %.2fms naive (%.2fx), distributed %.2fms vs %.2fms, %d msgs both\n",
			res.CentralizedIndexedMs, res.CentralizedNaiveMs, res.CentralizedSpeedup,
			res.DistributedIndexedMs, res.DistributedNaiveMs, res.DistributedMessages)
		return
	}

	type exp struct {
		id  string
		run func() *metrics.Table
	}
	full := !*quick
	pick := func(a, b int) int {
		if full {
			return a
		}
		return b
	}
	suite := []exp{
		{"E1", func() *metrics.Table {
			if full {
				return experiments.E1JoinApproaches([]int{6, 10, 14, 18}, 20)
			}
			return experiments.E1JoinApproaches([]int{6, 10}, 10)
		}},
		{"E2", func() *metrics.Table {
			return experiments.E2LoadBalance(pick(12, 8), pick(40, 20))
		}},
		{"E3", func() *metrics.Table {
			return experiments.E3MultiStream(pick(10, 6), []int{2, 3, 4}, pick(6, 3))
		}},
		{"E4", func() *metrics.Table {
			return experiments.E4Spatial(pick(12, 8), []float64{0, 8, 4, 2}, pick(12, 6))
		}},
		{"E5", func() *metrics.Table {
			if full {
				return experiments.E5SPT([]int{5, 7, 10, 14})
			}
			return experiments.E5SPT([]int{4, 6})
		}},
		{"E6", func() *metrics.Table {
			return experiments.E6Deletions(pick(300, 100), []float64{0.1, 0.3, 0.5})
		}},
		{"E7", func() *metrics.Table {
			return experiments.E7Loss(pick(10, 6), []float64{0, 0.05, 0.1, 0.2, 0.3}, pick(20, 10))
		}},
		{"E8", func() *metrics.Table {
			if full {
				return experiments.E8Latency([]int{6, 10, 14})
			}
			return experiments.E8Latency([]int{6})
		}},
		{"E9", func() *metrics.Table {
			return experiments.E9Memory(pick(8, 6))
		}},
		{"E10", func() *metrics.Table {
			return experiments.E10Magic(pick(8, 4), pick(12, 8))
		}},
		{"E11", func() *metrics.Table {
			if full {
				return experiments.E11Aggregation([]int{6, 10, 14})
			}
			return experiments.E11Aggregation([]int{6})
		}},
		{"E12", func() *metrics.Table {
			return experiments.E12Lifetime(pick(10, 8), 500, pick(150, 60))
		}},
		{"E13", func() *metrics.Table {
			if full {
				return experiments.E13Batching([]int{6, 10, 14}, 6, 4)
			}
			return experiments.E13Batching([]int{6, 10}, 4, 3)
		}},
		{"E14", func() *metrics.Table {
			if full {
				return experiments.E14Churn([]int{0, 1, 2, 4, 8}, 6)
			}
			return experiments.E14Churn([]int{0, 2, 4}, 3)
		}},
	}

	ran := 0
	for _, e := range suite {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		tbl := e.run()
		fmt.Printf("=== %s (%.2fs) ===\n", e.id, time.Since(start).Seconds())
		tbl.Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snbench: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}

// runTrace runs the observed E1 workload, exports the filtered JSONL
// trace, prints the counter snapshot, and verifies trace/counter
// agreement.
func runTrace(path, kinds string, node int, pred string, quick bool) error {
	m, tuples := 10, 20
	if quick {
		m, tuples = 6, 10
	}
	// Capacity covers every event of the full E1 run (the m=10 workload
	// records ~20k events); an undersized ring would undercount sends
	// in the cross-check below.
	res := experiments.TraceE1(m, tuples, 1<<19)

	f := obs.Filter{Node: obs.AnyNode, Pred: pred}
	if node >= 0 {
		f.Node = int32(node)
	}
	if kinds != "" {
		for _, name := range strings.Split(kinds, ",") {
			k, ok := obs.ParseKind(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown trace kind %q", name)
			}
			f.Kinds = append(f.Kinds, k)
		}
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	written, err := res.Trace.WriteJSONL(out, f)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	snap := res.Registry.Snapshot()
	metrics.SnapshotTable(
		fmt.Sprintf("observed E1 (grid %dx%d, %d tuples/stream)", m, m, tuples),
		snap.Counters, "nsim.", "core.", "routing.").Render(os.Stdout)
	fmt.Printf("\ntrace: %d events recorded, %d evicted, %d exported to %s\n",
		res.Trace.Total(), res.Trace.Dropped(), written, path)

	// The trace and the counters watch the same hooks; any disagreement
	// means a recording path was skipped or double-fired.
	if res.Trace.Dropped() > 0 {
		return fmt.Errorf("trace ring overflowed (%d evicted); raise the capacity in runTrace", res.Trace.Dropped())
	}
	agg := res.Trace.CountKinds()
	checks := []struct {
		kind    obs.EventKind
		counter string
	}{
		{obs.EvSend, "nsim.messages"},
		{obs.EvRecv, "nsim.received"},
		{obs.EvDrop, "nsim.dropped"},
		{obs.EvDerive, "core.derivations"},
		{obs.EvDelete, "core.deletions"},
		{obs.EvSettle, "core.settles"},
	}
	for _, c := range checks {
		if agg[c.kind] != snap.Get(c.counter) {
			return fmt.Errorf("trace/counter mismatch: %d %s events vs %s=%d",
				agg[c.kind], c.kind, c.counter, snap.Get(c.counter))
		}
	}
	fmt.Println("trace/counter cross-check: send, recv, drop, derive, delete, settle all agree")
	return nil
}
