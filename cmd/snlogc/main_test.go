package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/datalog/analysis"
	"repro/internal/datalog/parser"
)

func TestReadSourceFromFile(t *testing.T) {
	src, err := readSource([]string{"testdata/logicj.snl"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "jp(Y, D1)") {
		t.Errorf("unexpected source: %q", src[:50])
	}
}

func TestReadSourceMissingFile(t *testing.T) {
	if _, err := readSource([]string{"testdata/nope.snl"}); err == nil {
		t.Error("missing file should error")
	}
}

// report must render the XY analysis of the logicJ program without
// panicking and with the expected classification.
func TestReportLogicJ(t *testing.T) {
	src, err := readSource([]string{"testdata/logicj.snl"})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { report(prog, res) })
	for _, want := range []string{"XY-stratified", "stage argument", "same-stage order"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<16)
		n, _ := r.Read(buf)
		done <- string(buf[:n])
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}
