// Command snlogc is the deductive-program compiler front end: it parses
// a program, runs the static analyses the distributed engine depends on
// (safety, stratification, XY-stratification), reports the compilation
// plan, and optionally applies the magic-set transformation for a query.
//
// Usage:
//
//	snlogc [-magic 'anc(a, X)'] program.snl
//	cat program.snl | snlogc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/datalog/analysis"
	"repro/internal/datalog/magic"
	"repro/internal/datalog/parser"
)

func main() {
	magicQuery := flag.String("magic", "", "apply the magic-set transformation for this query literal and print the rewritten program")
	quiet := flag.Bool("q", false, "only report errors")
	flag.Parse()

	src, err := readSource(flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	res, err := analysis.Analyze(prog)
	if err != nil {
		fatal(err)
	}
	if *magicQuery != "" {
		qr, err := parser.ParseRule(*magicQuery + ".")
		if err != nil {
			fatal(fmt.Errorf("bad -magic query: %w", err))
		}
		tr, err := magic.Rewrite(prog, qr.Head)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%% magic-set rewrite for %s (answers in %s)\n", *magicQuery, tr.AnswerPred)
		fmt.Print(tr.Program.String())
		return
	}
	if *quiet {
		return
	}
	report(prog, res)
}

func readSource(args []string) (string, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

func report(prog interface{ String() string }, res *analysis.Result) {
	fmt.Printf("program OK: %d rules\n", len(res.Program.Rules))
	switch {
	case res.Stratified && !res.Recursive:
		fmt.Println("class: non-recursive, stratified")
	case res.Stratified:
		fmt.Println("class: recursive, stratified")
	case res.XYStratified:
		fmt.Println("class: XY-stratified (recursion through negation, staged)")
	}
	var preds []string
	for p := range res.Strata {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool {
		if res.Strata[preds[i]] != res.Strata[preds[j]] {
			return res.Strata[preds[i]] < res.Strata[preds[j]]
		}
		return preds[i] < preds[j]
	})
	fmt.Println("strata:")
	for _, p := range preds {
		kind := "derived"
		if res.Program.IsBase(p) {
			kind = "base"
		}
		fmt.Printf("  %d  %-16s %s\n", res.Strata[p], p, kind)
	}
	for rep, w := range res.XY {
		fmt.Printf("XY component at %s:\n", rep)
		for p, arg := range w.StageArg {
			fmt.Printf("  stage argument of %s: #%d\n", p, arg)
		}
		fmt.Printf("  same-stage order: %v\n", w.SameStageOrder)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlogc:", err)
	os.Exit(1)
}
