// Command benchcheck gates the simulator benchmark against a committed
// baseline: `make bench-check` regenerates BENCH_sim.json and fails the
// build when the fast path drifted from BENCH_baseline.json.
//
// Three metrics are gated:
//
//   - events: the deterministic workload size — any difference means the
//     benchmark is no longer measuring the same run and the baseline is
//     meaningless, so equality is required.
//   - allocs_per_event_fast: allocation count per event is deterministic
//     for a fixed workload, so the tolerance (default ±10%) exists only
//     to absorb intentional small shifts; both directions fail, because
//     an improvement beyond tolerance means the committed baseline is
//     stale and should be refreshed along with the change that earned it.
//   - events_per_sec_fast: wall-clock throughput is noisy on shared
//     machines, so only a regression beyond the (wider) throughput
//     tolerance fails; improvements always pass.
//
// Usage:
//
//	benchcheck -baseline BENCH_baseline.json -candidate BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// simBench mirrors the gated subset of experiments.SimBenchResult's
// JSON; unknown fields are ignored so the baseline survives additions.
// Fields are pointers so a key that is absent from a file (an old
// baseline predating a new metric) is distinguishable from a zero: a
// missing baseline key warns instead of failing, so adding a gated
// metric does not break the build before the baseline is refreshed —
// present keys keep their full gates.
type simBench struct {
	Events           *int64   `json:"events"`
	AllocsPerEvent   *float64 `json:"allocs_per_event_fast"`
	EventsPerSecFast *float64 `json:"events_per_sec_fast"`
}

func load(path string) (*simBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b simBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

func relDiff(base, cand float64) float64 {
	if base == 0 {
		return math.Inf(1)
	}
	return (cand - base) / base
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline metrics")
	candidate := flag.String("candidate", "BENCH_sim.json", "freshly generated metrics to gate")
	tol := flag.Float64("tolerance", 0.10, "allowed relative drift in allocs_per_event_fast, either direction")
	thrTol := flag.Float64("throughput-tolerance", 0.35, "allowed relative throughput regression (timing noise headroom)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}

	failed := false
	fail := func(format string, args ...interface{}) {
		failed = true
		fmt.Printf("FAIL  "+format+"\n", args...)
	}
	// missing reports a gate whose key one side lacks. Absent from the
	// baseline: warn only — the metric is new and the baseline predates
	// it; refresh to start gating it. Absent from the candidate while
	// the baseline has it: fail — a gated metric disappeared.
	missing := func(name string, inBase, inCand bool) bool {
		switch {
		case !inBase && !inCand:
			fmt.Printf("warn  %s: absent from both files; nothing to gate\n", name)
		case !inBase:
			fmt.Printf("warn  %s: absent from baseline %s — refresh it to gate this metric\n", name, *baseline)
		case !inCand:
			fail("%s: present in baseline but missing from candidate %s", name, *candidate)
		}
		return !inBase || !inCand
	}

	if !missing("events", base.Events != nil, cand.Events != nil) {
		if *cand.Events != *base.Events {
			fail("events: %d, baseline %d — the workload changed; regenerate %s deliberately",
				*cand.Events, *base.Events, *baseline)
		} else {
			fmt.Printf("ok    events: %d (exact match)\n", *cand.Events)
		}
	}

	if !missing("allocs/event", base.AllocsPerEvent != nil, cand.AllocsPerEvent != nil) {
		if d := relDiff(*base.AllocsPerEvent, *cand.AllocsPerEvent); math.Abs(d) > *tol {
			verb := "regressed"
			hint := "find the new allocation"
			if d < 0 {
				verb = "improved"
				hint = "refresh " + *baseline + " to bank the win"
			}
			fail("allocs/event: %.3f, baseline %.3f (%+.1f%% — %s beyond ±%.0f%%; %s)",
				*cand.AllocsPerEvent, *base.AllocsPerEvent, 100*d, verb, 100**tol, hint)
		} else {
			fmt.Printf("ok    allocs/event: %.3f vs baseline %.3f (%+.1f%%, within ±%.0f%%)\n",
				*cand.AllocsPerEvent, *base.AllocsPerEvent,
				100*relDiff(*base.AllocsPerEvent, *cand.AllocsPerEvent), 100**tol)
		}
	}

	if !missing("throughput", base.EventsPerSecFast != nil, cand.EventsPerSecFast != nil) {
		if d := relDiff(*base.EventsPerSecFast, *cand.EventsPerSecFast); d < -*thrTol {
			fail("throughput: %.0f events/s, baseline %.0f (%.1f%% regression beyond %.0f%% noise floor)",
				*cand.EventsPerSecFast, *base.EventsPerSecFast, -100*d, 100**thrTol)
		} else {
			fmt.Printf("ok    throughput: %.0f events/s vs baseline %.0f (%+.1f%%)\n",
				*cand.EventsPerSecFast, *base.EventsPerSecFast,
				100*relDiff(*base.EventsPerSecFast, *cand.EventsPerSecFast))
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcheck: candidate within baseline envelope")
}
