// Command benchcheck gates the simulator benchmark against a committed
// baseline: `make bench-check` regenerates BENCH_sim.json and fails the
// build when the fast path drifted from BENCH_baseline.json.
//
// Gated metrics:
//
//   - events: the deterministic workload size — any difference means the
//     benchmark is no longer measuring the same run and the baseline is
//     meaningless, so equality is required.
//   - allocs_per_event_fast: allocation count per event is deterministic
//     for a fixed workload, so the tolerance (default ±10%) exists only
//     to absorb intentional small shifts; both directions fail, because
//     an improvement beyond tolerance means the committed baseline is
//     stale and should be refreshed along with the change that earned it.
//   - events_per_sec_fast: wall-clock throughput is noisy on shared
//     machines, so only a regression beyond the (wider) throughput
//     tolerance fails; improvements always pass.
//   - sharding rows (matched by shard count, single-threaded row
//     excluded): speedup is timing-based and gated regression-only like
//     throughput; barriers_per_1k_events is deterministic and gated
//     increase-only — more mid-run folds per event means the fold
//     elision regressed — with a small absolute slack so a zero
//     baseline stays gateable.
//
// With -serve-baseline/-serve-candidate it additionally gates the
// query-serving benchmark (BENCH_serve.json, experiment E16):
//
//   - queries: deterministic workload size, equality required (same
//     contract as events).
//   - hot_qps / churn_qps: wall-clock rates, regression-only beyond the
//     serve throughput tolerance (hot-path numbers are microsecond-scale
//     and noisy, so the floor is wide).
//   - fallbacks: deterministic — the magic path degraded to a full scan
//     for some goal — gated increase-only with zero slack.
//   - query_latency_p99_us: the histogram reports power-of-two bucket
//     upper bounds, so the quantile moves in 2x jumps; gated
//     increase-only with enough headroom for one bucket jump plus
//     scheduling noise.
//   - churn_batched_qps: the coalesced-write churn rate, regression-only
//     like the other rates.
//   - readers rows (matched by reader count): concurrent-reader hot-goal
//     qps, regression-only — the single-reader row doubles as the "no
//     worse than the serial path" gate.
//   - churn_batched_syncs / mean_batch_size: deterministic coalescing
//     quality — more syncs or smaller batches than the baseline means
//     write batching is coalescing less. Warn-only: the numbers shift
//     legitimately when the phase shape changes, and the qps gates catch
//     any real throughput damage.
//
// Both comparisons warn (never fail) when baseline and candidate report
// different num_cpu or gomaxprocs values: the deterministic gates stay
// meaningful across machines, but every timing gate's noise floor
// assumes the same hardware.
//
// Usage:
//
//	benchcheck -baseline BENCH_baseline.json -candidate BENCH_sim.json \
//	    [-serve-baseline BENCH_serve_baseline.json -serve-candidate BENCH_serve.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// simBench mirrors the gated subset of experiments.SimBenchResult's
// JSON; unknown fields are ignored so the baseline survives additions.
// Fields are pointers so a key that is absent from a file (an old
// baseline predating a new metric) is distinguishable from a zero: a
// missing baseline key warns instead of failing, so adding a gated
// metric does not break the build before the baseline is refreshed —
// present keys keep their full gates.
type simBench struct {
	Events           *int64     `json:"events"`
	AllocsPerEvent   *float64   `json:"allocs_per_event_fast"`
	EventsPerSecFast *float64   `json:"events_per_sec_fast"`
	Sharding         []shardRow `json:"sharding"`
	NumCPU           *int       `json:"num_cpu"`
	GoMaxProcs       *int       `json:"gomaxprocs"`
}

// shardRow mirrors the gated subset of experiments.SimShardRow.
type shardRow struct {
	Shards        *int     `json:"shards"`
	Speedup       *float64 `json:"speedup"`
	BarriersPer1k *float64 `json:"barriers_per_1k_events"`
}

// serveBench mirrors the gated subset of experiments.ServeBenchResult's
// JSON, with the same pointer-field warn-on-absent contract as
// simBench.
type serveBench struct {
	Queries           *int64           `json:"queries"`
	HotQPS            *float64         `json:"hot_qps"`
	ChurnQPS          *float64         `json:"churn_qps"`
	ChurnBatchedQPS   *float64         `json:"churn_batched_qps"`
	ChurnBatchedSyncs *int64           `json:"churn_batched_syncs"`
	MeanBatchSize     *float64         `json:"mean_batch_size"`
	Readers           []serveReaderRow `json:"readers"`
	Fallbacks         *int64           `json:"fallbacks"`
	P99Us             *int64           `json:"query_latency_p99_us"`
	NumCPU            *int             `json:"num_cpu"`
	GoMaxProcs        *int             `json:"gomaxprocs"`
}

// serveReaderRow mirrors one concurrent-readers measurement.
type serveReaderRow struct {
	Readers *int     `json:"readers"`
	QPS     *float64 `json:"qps"`
}

func load(path string) (*simBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b simBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

func loadServe(path string) (*serveBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b serveBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

func relDiff(base, cand float64) float64 {
	if base == 0 {
		return math.Inf(1)
	}
	return (cand - base) / base
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline metrics")
	candidate := flag.String("candidate", "BENCH_sim.json", "freshly generated metrics to gate")
	tol := flag.Float64("tolerance", 0.10, "allowed relative drift in allocs_per_event_fast, either direction")
	thrTol := flag.Float64("throughput-tolerance", 0.35, "allowed relative throughput regression (timing noise headroom)")
	serveBaseline := flag.String("serve-baseline", "", "committed serve-bench baseline (empty skips serve gating)")
	serveCandidate := flag.String("serve-candidate", "", "freshly generated serve-bench metrics to gate")
	serveThrTol := flag.Float64("serve-throughput-tolerance", 0.50, "allowed relative qps regression in the serve bench")
	p99Tol := flag.Float64("p99-tolerance", 3.0, "allowed relative increase in query_latency_p99_us (3.0 = up to 4x; the histogram buckets are powers of two)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}

	failed := false
	fail := func(format string, args ...interface{}) {
		failed = true
		fmt.Printf("FAIL  "+format+"\n", args...)
	}
	// missing reports a gate whose key one side lacks. Absent from the
	// baseline: warn only — the metric is new and the baseline predates
	// it; refresh to start gating it. Absent from the candidate while
	// the baseline has it: fail — a gated metric disappeared.
	missing := func(name string, inBase, inCand bool) bool {
		switch {
		case !inBase && !inCand:
			fmt.Printf("warn  %s: absent from both files; nothing to gate\n", name)
		case !inBase:
			fmt.Printf("warn  %s: absent from baseline %s — refresh it to gate this metric\n", name, *baseline)
		case !inCand:
			fail("%s: present in baseline but missing from candidate %s", name, *candidate)
		}
		return !inBase || !inCand
	}

	// Cross-machine comparisons are legal but every timing gate's noise
	// floor assumes the same hardware, so a core-count mismatch warns
	// (never fails): the deterministic gates (events, allocs/event) stay
	// meaningful, the rate gates deserve suspicion.
	coreWarn := func(what string, bN, cN, bP, cP *int) {
		if bN != nil && cN != nil && *bN != *cN {
			fmt.Printf("warn  %s: candidate measured on %d CPUs, baseline on %d — timing gates compare different machines\n",
				what, *cN, *bN)
		}
		if bP != nil && cP != nil && *bP != *cP {
			fmt.Printf("warn  %s: candidate ran with GOMAXPROCS=%d, baseline with %d — parallel rows are not comparable\n",
				what, *cP, *bP)
		}
	}
	coreWarn("sim cores", base.NumCPU, cand.NumCPU, base.GoMaxProcs, cand.GoMaxProcs)

	if !missing("events", base.Events != nil, cand.Events != nil) {
		if *cand.Events != *base.Events {
			fail("events: %d, baseline %d — the workload changed; regenerate %s deliberately",
				*cand.Events, *base.Events, *baseline)
		} else {
			fmt.Printf("ok    events: %d (exact match)\n", *cand.Events)
		}
	}

	if !missing("allocs/event", base.AllocsPerEvent != nil, cand.AllocsPerEvent != nil) {
		if d := relDiff(*base.AllocsPerEvent, *cand.AllocsPerEvent); math.Abs(d) > *tol {
			verb := "regressed"
			hint := "find the new allocation"
			if d < 0 {
				verb = "improved"
				hint = "refresh " + *baseline + " to bank the win"
			}
			fail("allocs/event: %.3f, baseline %.3f (%+.1f%% — %s beyond ±%.0f%%; %s)",
				*cand.AllocsPerEvent, *base.AllocsPerEvent, 100*d, verb, 100**tol, hint)
		} else {
			fmt.Printf("ok    allocs/event: %.3f vs baseline %.3f (%+.1f%%, within ±%.0f%%)\n",
				*cand.AllocsPerEvent, *base.AllocsPerEvent,
				100*relDiff(*base.AllocsPerEvent, *cand.AllocsPerEvent), 100**tol)
		}
	}

	if !missing("throughput", base.EventsPerSecFast != nil, cand.EventsPerSecFast != nil) {
		if d := relDiff(*base.EventsPerSecFast, *cand.EventsPerSecFast); d < -*thrTol {
			fail("throughput: %.0f events/s, baseline %.0f (%.1f%% regression beyond %.0f%% noise floor)",
				*cand.EventsPerSecFast, *base.EventsPerSecFast, -100*d, 100**thrTol)
		} else {
			fmt.Printf("ok    throughput: %.0f events/s vs baseline %.0f (%+.1f%%)\n",
				*cand.EventsPerSecFast, *base.EventsPerSecFast,
				100*relDiff(*base.EventsPerSecFast, *cand.EventsPerSecFast))
		}
	}

	candRows := make(map[int]shardRow)
	for _, r := range cand.Sharding {
		if r.Shards != nil {
			candRows[*r.Shards] = r
		}
	}
	if len(base.Sharding) == 0 {
		fmt.Printf("warn  sharding: absent from baseline %s — refresh it to gate the sharded scheduler\n", *baseline)
	} else {
		for _, br := range base.Sharding {
			if br.Shards == nil || *br.Shards <= 1 {
				continue // the single-threaded anchor row gates nothing
			}
			n := *br.Shards
			cr, ok := candRows[n]
			if !ok {
				fail("sharding[shards=%d]: present in baseline but missing from candidate %s", n, *candidate)
				continue
			}
			name := fmt.Sprintf("shard%d speedup", n)
			if !missing(name, br.Speedup != nil, cr.Speedup != nil) {
				if d := relDiff(*br.Speedup, *cr.Speedup); d < -*thrTol {
					fail("%s: %.3fx, baseline %.3fx (%.1f%% regression beyond %.0f%% noise floor)",
						name, *cr.Speedup, *br.Speedup, -100*d, 100**thrTol)
				} else {
					fmt.Printf("ok    %s: %.3fx vs baseline %.3fx (%+.1f%%)\n",
						name, *cr.Speedup, *br.Speedup, 100*relDiff(*br.Speedup, *cr.Speedup))
				}
			}
			name = fmt.Sprintf("shard%d barriers/1k", n)
			if !missing(name, br.BarriersPer1k != nil, cr.BarriersPer1k != nil) {
				// Increase-only: the count is deterministic, so growth means
				// folds the elision used to skip came back. The 0.5 absolute
				// slack keeps a zero baseline from failing on any nonzero
				// candidate rounding.
				limit := *br.BarriersPer1k*(1+*tol) + 0.5
				if *cr.BarriersPer1k > limit {
					fail("%s: %.2f, baseline %.2f — fold elision regressed (limit %.2f)",
						name, *cr.BarriersPer1k, *br.BarriersPer1k, limit)
				} else {
					fmt.Printf("ok    %s: %.2f vs baseline %.2f\n", name, *cr.BarriersPer1k, *br.BarriersPer1k)
				}
			}
		}
	}

	if *serveBaseline != "" || *serveCandidate != "" {
		sbase, err := loadServe(*serveBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		scand, err := loadServe(*serveCandidate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}

		coreWarn("serve cores", sbase.NumCPU, scand.NumCPU, sbase.GoMaxProcs, scand.GoMaxProcs)

		if !missing("serve queries", sbase.Queries != nil, scand.Queries != nil) {
			if *scand.Queries != *sbase.Queries {
				fail("serve queries: %d, baseline %d — the serving workload changed; regenerate %s deliberately",
					*scand.Queries, *sbase.Queries, *serveBaseline)
			} else {
				fmt.Printf("ok    serve queries: %d (exact match)\n", *scand.Queries)
			}
		}

		qps := func(name string, b, c *float64) {
			if missing(name, b != nil, c != nil) {
				return
			}
			if d := relDiff(*b, *c); d < -*serveThrTol {
				fail("%s: %.0f q/s, baseline %.0f (%.1f%% regression beyond %.0f%% noise floor)",
					name, *c, *b, -100*d, 100**serveThrTol)
			} else {
				fmt.Printf("ok    %s: %.0f q/s vs baseline %.0f (%+.1f%%)\n",
					name, *c, *b, 100*relDiff(*b, *c))
			}
		}
		qps("serve hot qps", sbase.HotQPS, scand.HotQPS)
		qps("serve churn qps", sbase.ChurnQPS, scand.ChurnQPS)
		qps("serve churn-batched qps", sbase.ChurnBatchedQPS, scand.ChurnBatchedQPS)

		// Concurrent-reader rows, matched by reader count. Rates, so
		// regression-only like the other qps gates.
		candReaders := make(map[int]serveReaderRow)
		for _, r := range scand.Readers {
			if r.Readers != nil {
				candReaders[*r.Readers] = r
			}
		}
		if len(sbase.Readers) == 0 {
			fmt.Printf("warn  serve readers: absent from baseline %s — refresh it to gate the concurrent read path\n", *serveBaseline)
		} else {
			for _, br := range sbase.Readers {
				if br.Readers == nil {
					continue
				}
				n := *br.Readers
				cr, ok := candReaders[n]
				if !ok {
					fail("serve readers[%d]: present in baseline but missing from candidate %s", n, *serveCandidate)
					continue
				}
				qps(fmt.Sprintf("serve readers=%d qps", n), br.QPS, cr.QPS)
			}
		}

		// Coalescing quality: deterministic counts, but phase-shape
		// changes move them legitimately, so these warn instead of
		// failing — the qps gates above are the hard floor.
		if sbase.ChurnBatchedSyncs != nil && scand.ChurnBatchedSyncs != nil {
			if *scand.ChurnBatchedSyncs > *sbase.ChurnBatchedSyncs {
				fmt.Printf("warn  serve churn-batched syncs: %d, baseline %d — write batching coalesces less than it used to\n",
					*scand.ChurnBatchedSyncs, *sbase.ChurnBatchedSyncs)
			} else {
				fmt.Printf("ok    serve churn-batched syncs: %d vs baseline %d\n",
					*scand.ChurnBatchedSyncs, *sbase.ChurnBatchedSyncs)
			}
		}
		if sbase.MeanBatchSize != nil && scand.MeanBatchSize != nil {
			if *scand.MeanBatchSize < *sbase.MeanBatchSize {
				fmt.Printf("warn  serve mean batch size: %.1f, baseline %.1f — batches shrank; syncs per write are up\n",
					*scand.MeanBatchSize, *sbase.MeanBatchSize)
			} else {
				fmt.Printf("ok    serve mean batch size: %.1f vs baseline %.1f\n",
					*scand.MeanBatchSize, *sbase.MeanBatchSize)
			}
		}

		if !missing("serve fallbacks", sbase.Fallbacks != nil, scand.Fallbacks != nil) {
			if *scand.Fallbacks > *sbase.Fallbacks {
				fail("serve fallbacks: %d, baseline %d — the magic-set point-query path degraded to full scans",
					*scand.Fallbacks, *sbase.Fallbacks)
			} else {
				fmt.Printf("ok    serve fallbacks: %d vs baseline %d\n", *scand.Fallbacks, *sbase.Fallbacks)
			}
		}

		if !missing("serve p99 latency", sbase.P99Us != nil, scand.P99Us != nil) {
			limit := float64(*sbase.P99Us) * (1 + *p99Tol)
			if float64(*scand.P99Us) > limit {
				fail("serve p99 latency: %dµs, baseline %dµs — beyond the %.0fx headroom (limit %.0fµs)",
					*scand.P99Us, *sbase.P99Us, 1+*p99Tol, limit)
			} else {
				fmt.Printf("ok    serve p99 latency: %dµs vs baseline %dµs (limit %.0fµs)\n",
					*scand.P99Us, *sbase.P99Us, limit)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcheck: candidate within baseline envelope")
}
