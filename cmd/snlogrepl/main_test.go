package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	snlog "repro"
	"repro/internal/serve"
)

const sessionSrc = `
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
`

func TestReplSession(t *testing.T) {
	m, err := newSession(sessionSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder

	run := func(line string) string {
		out.Reset()
		if done := execute(&out, m, line); done {
			t.Fatalf("unexpected quit on %q", line)
		}
		return out.String()
	}

	got := run("+ veh(enemy, loc(1, 1), 5)")
	if !strings.Contains(got, "+ uncov(loc(1, 1), 5)") {
		t.Errorf("assert output = %q", got)
	}
	got = run("+ veh(friendly, loc(2, 2), 5)")
	if !strings.Contains(got, "- uncov(loc(1, 1), 5)") || !strings.Contains(got, "+ cov(") {
		t.Errorf("cover output = %q", got)
	}
	got = run("? cov/2")
	if !strings.Contains(got, "cov(loc(1, 1), 5)") {
		t.Errorf("query output = %q", got)
	}
	got = run("- veh(friendly, loc(2, 2), 5)")
	if !strings.Contains(got, "+ uncov(loc(1, 1), 5)") {
		t.Errorf("retract output = %q", got)
	}
	got = run("proof uncov(loc(1, 1), 5)")
	if !strings.Contains(got, "veh(enemy, loc(1, 1), 5)") {
		t.Errorf("proof output = %q", got)
	}
	got = run("stats")
	if !strings.Contains(got, "join ops") {
		t.Errorf("stats output = %q", got)
	}
	got = run("?")
	if !strings.Contains(got, "uncov/2") {
		t.Errorf("list-all output = %q", got)
	}
	got = run("nonsense")
	if !strings.Contains(got, "unknown command") {
		t.Errorf("unknown output = %q", got)
	}
	got = run("+ not a fact")
	if !strings.Contains(got, "error") {
		t.Errorf("bad fact output = %q", got)
	}
	out.Reset()
	if done := execute(&out, m, "quit"); !done {
		t.Error("quit should end the session")
	}
}

func TestReplLoop(t *testing.T) {
	m, err := newSession(`d(X) :- s(X).`)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("+ s(1)\n? d/1\nquit\n")
	var out strings.Builder
	repl(in, &out, m)
	if !strings.Contains(out.String(), "d(1)") {
		t.Errorf("repl output = %q", out.String())
	}
}

func TestParseFactVariants(t *testing.T) {
	if _, err := parseFact("p(1, a)."); err != nil {
		t.Error(err)
	}
	if _, err := parseFact("p(1, a)"); err != nil {
		t.Error("trailing dot should be optional")
	}
	if _, err := parseFact("p(X)"); err == nil {
		t.Error("non-ground fact should error")
	}
}

func TestReplGoalQuery(t *testing.T) {
	s, err := newSession(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	run := func(line string) string {
		out.Reset()
		execute(&out, s, line)
		return out.String()
	}
	run("+ edge(a, b)")
	run("+ edge(b, c)")
	got := run("? path(a, X)")
	if !strings.Contains(got, "path(a, b)") || !strings.Contains(got, "path(a, c)") {
		t.Errorf("goal query output = %q", got)
	}
	got = run("? path(a, c)")
	if !strings.Contains(got, "path(a, c)") {
		t.Errorf("ground goal output = %q", got)
	}
	got = run("? path(X)")
	if !strings.Contains(got, "error") || !strings.Contains(got, "arity") {
		t.Errorf("arity error output = %q", got)
	}
	got = run("? edge(a, X)")
	if !strings.Contains(got, "error") {
		t.Errorf("base goal should error on the shared path, got %q", got)
	}
}

func TestRemoteExecute(t *testing.T) {
	sess, err := serve.Open(context.Background(), `
.base edge/2.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
.query path/2.
`, snlog.Grid(2), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(sess, ln)
	defer srv.Close()
	c, err := serve.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out strings.Builder
	run := func(line string) string {
		out.Reset()
		if done := remoteExecute(&out, c, line); done {
			t.Fatalf("unexpected quit on %q", line)
		}
		return out.String()
	}
	run("+ edge(a, b)")
	run("+ edge(b, c)")
	got := run("? path(a, X)")
	if !strings.Contains(got, "path(a, b)") || !strings.Contains(got, "path(a, c)") {
		t.Errorf("remote goal query = %q", got)
	}
	got = run("? path/2")
	if !strings.Contains(got, "path(b, c)") {
		t.Errorf("remote pred/arity query = %q", got)
	}
	got = run("proof path(a, c)")
	if !strings.Contains(got, "edge") {
		t.Errorf("remote proof = %q", got)
	}
	got = run("- edge(b, c)")
	if strings.Contains(got, "error") {
		t.Errorf("remote retract = %q", got)
	}
	got = run("? path(a, X)")
	if strings.Contains(got, "path(a, c)") {
		t.Errorf("deleted edge still reachable: %q", got)
	}
	got = run("stats")
	if !strings.Contains(got, "serve.queries") {
		t.Errorf("remote stats = %q", got)
	}
	got = run("? ghost(X)")
	if !strings.Contains(got, "error") {
		t.Errorf("remote unknown pred = %q", got)
	}
	out.Reset()
	if done := remoteExecute(&out, c, "quit"); !done {
		t.Error("quit should end the session")
	}
}

// Regression: -connect printed raw wire error codes (or duplicated
// sentinel text) for typed validation errors instead of the human
// message. A code-only response must surface the sentinel's own text,
// and a message-bearing one must print verbatim — no "not_ground:"
// prefix, no doubled "tuple not ground: tuple not ground".
func TestRemoteExecuteErrorMessages(t *testing.T) {
	// Stub daemon over a pipe: answers every request with a code-only
	// error frame, the minimal-server shape that leaked raw codes.
	cliConn, srvConn := net.Pipe()
	go func() {
		sc := bufio.NewScanner(srvConn)
		for sc.Scan() {
			var req serve.Request
			if json.Unmarshal(sc.Bytes(), &req) != nil {
				continue
			}
			resp, _ := json.Marshal(serve.Response{ID: req.ID, OK: false, Code: serve.CodeNotGround})
			srvConn.Write(append(resp, '\n'))
		}
	}()
	c := serve.NewClient(cliConn)
	defer c.Close()

	var out strings.Builder
	remoteExecute(&out, c, "? path(a, X)")
	got := out.String()
	if !strings.Contains(got, "tuple not ground") {
		t.Errorf("code-only error lost the human message: %q", got)
	}
	if strings.Contains(got, "not_ground") {
		t.Errorf("raw wire code leaked into the output: %q", got)
	}

	// Real daemon: a message-bearing validation error prints the
	// server's message exactly once.
	sess, err := serve.Open(context.Background(), `
.base edge/2.
path(X, Y) :- edge(X, Y).
.query path/2.
`, snlog.Grid(2), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(sess, ln)
	defer srv.Close()
	rc, err := serve.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	out.Reset()
	remoteExecute(&out, rc, "+ edge(X, b)") // unbound variable
	got = out.String()
	if !strings.Contains(got, "tuple not ground") {
		t.Errorf("real-server error lost the human message: %q", got)
	}
	if strings.Count(got, "tuple not ground") != 1 {
		t.Errorf("sentinel text duplicated: %q", got)
	}
}

func TestRenderWatch(t *testing.T) {
	prev := map[string]int64{
		"serve.queries":      1000,
		"serve.cache.hits":   500,
		"serve.cache.misses": 100,
		"serve.batch.writes": 40,
		"nsim.events":        10000,
	}
	cur := map[string]int64{
		"serve.queries":           1200,
		"serve.qps_1m":            95,
		"serve.cache.hits":        680,
		"serve.cache.misses":      120,
		"serve.batch.writes":      60,
		"serve.batch.flush.size":  7,
		"serve.batch.flush.fresh": 3,
		"serve.query_latency.p50": 40,
		"serve.query_latency.p99": 900,
		"serve.query_latency.max": 1500,
		"nsim.events":             11000,
		"nsim.events_per_sec_1m":  480,
	}
	got := renderWatch(prev, cur, 2*time.Second)
	for _, want := range []string{
		"qps 100",        // (1200-1000)/2s
		"1m avg 95",      // daemon gauge passthrough
		"hit rate 85.0%", // lifetime 680/800
		"(window 90.0%)", // delta 180/200
		"p50 40",
		"p99 900",
		"events/s 500", // (11000-10000)/2s
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
	// First frame: no prev, no rates, no panic.
	first := renderWatch(nil, cur, 0)
	if !strings.Contains(first, "qps 0") || !strings.Contains(first, "hit rate 85.0%") {
		t.Errorf("first frame = %q", first)
	}
}

func TestWatchLoop(t *testing.T) {
	calls := 0
	fetch := func() (map[string]int64, error) {
		calls++
		if calls == 2 {
			return nil, fmt.Errorf("daemon restarting")
		}
		return map[string]int64{"serve.queries": int64(100 * calls)}, nil
	}
	var out strings.Builder
	watchLoop(&out, fetch, time.Millisecond, 3, false)
	got := out.String()
	if calls != 3 {
		t.Fatalf("fetch called %d times, want 3", calls)
	}
	if strings.Count(got, "snltop —") != 2 {
		t.Errorf("want 2 rendered frames around the error, got:\n%s", got)
	}
	if !strings.Contains(got, "snltop: daemon restarting") {
		t.Errorf("fetch error not surfaced: %q", got)
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Errorf("clear=false must not emit ANSI clears")
	}
}
