package main

import (
	"strings"
	"testing"
)

const sessionSrc = `
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
`

func TestReplSession(t *testing.T) {
	m, err := newSession(sessionSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder

	run := func(line string) string {
		out.Reset()
		if done := execute(&out, m, line); done {
			t.Fatalf("unexpected quit on %q", line)
		}
		return out.String()
	}

	got := run("+ veh(enemy, loc(1, 1), 5)")
	if !strings.Contains(got, "+ uncov(loc(1, 1), 5)") {
		t.Errorf("assert output = %q", got)
	}
	got = run("+ veh(friendly, loc(2, 2), 5)")
	if !strings.Contains(got, "- uncov(loc(1, 1), 5)") || !strings.Contains(got, "+ cov(") {
		t.Errorf("cover output = %q", got)
	}
	got = run("? cov/2")
	if !strings.Contains(got, "cov(loc(1, 1), 5)") {
		t.Errorf("query output = %q", got)
	}
	got = run("- veh(friendly, loc(2, 2), 5)")
	if !strings.Contains(got, "+ uncov(loc(1, 1), 5)") {
		t.Errorf("retract output = %q", got)
	}
	got = run("proof uncov(loc(1, 1), 5)")
	if !strings.Contains(got, "veh(enemy, loc(1, 1), 5)") {
		t.Errorf("proof output = %q", got)
	}
	got = run("stats")
	if !strings.Contains(got, "join ops") {
		t.Errorf("stats output = %q", got)
	}
	got = run("?")
	if !strings.Contains(got, "uncov/2") {
		t.Errorf("list-all output = %q", got)
	}
	got = run("nonsense")
	if !strings.Contains(got, "unknown command") {
		t.Errorf("unknown output = %q", got)
	}
	got = run("+ not a fact")
	if !strings.Contains(got, "error") {
		t.Errorf("bad fact output = %q", got)
	}
	out.Reset()
	if done := execute(&out, m, "quit"); !done {
		t.Error("quit should end the session")
	}
}

func TestReplLoop(t *testing.T) {
	m, err := newSession(`d(X) :- s(X).`)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("+ s(1)\n? d/1\nquit\n")
	var out strings.Builder
	repl(in, &out, m)
	if !strings.Contains(out.String(), "d(1)") {
		t.Errorf("repl output = %q", out.String())
	}
}

func TestParseFactVariants(t *testing.T) {
	if _, err := parseFact("p(1, a)."); err != nil {
		t.Error(err)
	}
	if _, err := parseFact("p(1, a)"); err != nil {
		t.Error("trailing dot should be optional")
	}
	if _, err := parseFact("p(X)"); err == nil {
		t.Error("non-ground fact should error")
	}
}
