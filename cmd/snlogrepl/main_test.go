package main

import (
	"context"
	"net"
	"strings"
	"testing"

	snlog "repro"
	"repro/internal/serve"
)

const sessionSrc = `
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
`

func TestReplSession(t *testing.T) {
	m, err := newSession(sessionSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder

	run := func(line string) string {
		out.Reset()
		if done := execute(&out, m, line); done {
			t.Fatalf("unexpected quit on %q", line)
		}
		return out.String()
	}

	got := run("+ veh(enemy, loc(1, 1), 5)")
	if !strings.Contains(got, "+ uncov(loc(1, 1), 5)") {
		t.Errorf("assert output = %q", got)
	}
	got = run("+ veh(friendly, loc(2, 2), 5)")
	if !strings.Contains(got, "- uncov(loc(1, 1), 5)") || !strings.Contains(got, "+ cov(") {
		t.Errorf("cover output = %q", got)
	}
	got = run("? cov/2")
	if !strings.Contains(got, "cov(loc(1, 1), 5)") {
		t.Errorf("query output = %q", got)
	}
	got = run("- veh(friendly, loc(2, 2), 5)")
	if !strings.Contains(got, "+ uncov(loc(1, 1), 5)") {
		t.Errorf("retract output = %q", got)
	}
	got = run("proof uncov(loc(1, 1), 5)")
	if !strings.Contains(got, "veh(enemy, loc(1, 1), 5)") {
		t.Errorf("proof output = %q", got)
	}
	got = run("stats")
	if !strings.Contains(got, "join ops") {
		t.Errorf("stats output = %q", got)
	}
	got = run("?")
	if !strings.Contains(got, "uncov/2") {
		t.Errorf("list-all output = %q", got)
	}
	got = run("nonsense")
	if !strings.Contains(got, "unknown command") {
		t.Errorf("unknown output = %q", got)
	}
	got = run("+ not a fact")
	if !strings.Contains(got, "error") {
		t.Errorf("bad fact output = %q", got)
	}
	out.Reset()
	if done := execute(&out, m, "quit"); !done {
		t.Error("quit should end the session")
	}
}

func TestReplLoop(t *testing.T) {
	m, err := newSession(`d(X) :- s(X).`)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("+ s(1)\n? d/1\nquit\n")
	var out strings.Builder
	repl(in, &out, m)
	if !strings.Contains(out.String(), "d(1)") {
		t.Errorf("repl output = %q", out.String())
	}
}

func TestParseFactVariants(t *testing.T) {
	if _, err := parseFact("p(1, a)."); err != nil {
		t.Error(err)
	}
	if _, err := parseFact("p(1, a)"); err != nil {
		t.Error("trailing dot should be optional")
	}
	if _, err := parseFact("p(X)"); err == nil {
		t.Error("non-ground fact should error")
	}
}

func TestReplGoalQuery(t *testing.T) {
	s, err := newSession(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	run := func(line string) string {
		out.Reset()
		execute(&out, s, line)
		return out.String()
	}
	run("+ edge(a, b)")
	run("+ edge(b, c)")
	got := run("? path(a, X)")
	if !strings.Contains(got, "path(a, b)") || !strings.Contains(got, "path(a, c)") {
		t.Errorf("goal query output = %q", got)
	}
	got = run("? path(a, c)")
	if !strings.Contains(got, "path(a, c)") {
		t.Errorf("ground goal output = %q", got)
	}
	got = run("? path(X)")
	if !strings.Contains(got, "error") || !strings.Contains(got, "arity") {
		t.Errorf("arity error output = %q", got)
	}
	got = run("? edge(a, X)")
	if !strings.Contains(got, "error") {
		t.Errorf("base goal should error on the shared path, got %q", got)
	}
}

func TestRemoteExecute(t *testing.T) {
	sess, err := serve.Open(context.Background(), `
.base edge/2.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
.query path/2.
`, snlog.Grid(2), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(sess, ln)
	defer srv.Close()
	c, err := serve.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out strings.Builder
	run := func(line string) string {
		out.Reset()
		if done := remoteExecute(&out, c, line); done {
			t.Fatalf("unexpected quit on %q", line)
		}
		return out.String()
	}
	run("+ edge(a, b)")
	run("+ edge(b, c)")
	got := run("? path(a, X)")
	if !strings.Contains(got, "path(a, b)") || !strings.Contains(got, "path(a, c)") {
		t.Errorf("remote goal query = %q", got)
	}
	got = run("? path/2")
	if !strings.Contains(got, "path(b, c)") {
		t.Errorf("remote pred/arity query = %q", got)
	}
	got = run("proof path(a, c)")
	if !strings.Contains(got, "edge") {
		t.Errorf("remote proof = %q", got)
	}
	got = run("- edge(b, c)")
	if strings.Contains(got, "error") {
		t.Errorf("remote retract = %q", got)
	}
	got = run("? path(a, X)")
	if strings.Contains(got, "path(a, c)") {
		t.Errorf("deleted edge still reachable: %q", got)
	}
	got = run("stats")
	if !strings.Contains(got, "serve.queries") {
		t.Errorf("remote stats = %q", got)
	}
	got = run("? ghost(X)")
	if !strings.Contains(got, "error") {
		t.Errorf("remote unknown pred = %q", got)
	}
	out.Reset()
	if done := remoteExecute(&out, c, "quit"); !done {
		t.Error("quit should end the session")
	}
}
