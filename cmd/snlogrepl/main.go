// Command snlogrepl is an interactive console for the deductive
// language: load a program, assert and retract facts, and watch derived
// predicates update incrementally (set-of-derivations maintenance) —
// the centralized counterpart of what the distributed engine does
// in-network, handy for developing programs before deployment.
//
// With -connect it speaks the snlogd wire protocol instead, turning the
// same console into a client of a live deployment: queries go through
// the daemon's magic-set point-query path and result cache, proofs
// through its provenance store.
//
// Usage:
//
//	snlogrepl [program.snl]
//	snlogrepl -connect 127.0.0.1:7654
//
// Commands:
//
//	assert:      + fact(args).      (-connect: injects at node 0)
//	retract:     - fact(args).
//	query:       ? pred/arity       (lists everything derived for it)
//	             ? goal(args)       (point query, variables allowed)
//	             ?                  (local only: list all derived)
//	proof tree:  proof fact(args).
//	counters:    stats
//	exit:        quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
	"repro/internal/serve"
)

func main() {
	connect := flag.String("connect", "", "snlogd address to drive instead of a local session")
	flag.Parse()
	if *connect != "" {
		c, err := serve.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		fmt.Printf("snlogrepl — connected to %s (help for commands)\n", *connect)
		remoteRepl(os.Stdin, os.Stdout, c)
		return
	}
	src := ""
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	m, err := newSession(src)
	if err != nil {
		fatal(err)
	}
	fmt.Println("snlogrepl — deductive console (help for commands)")
	repl(os.Stdin, os.Stdout, m)
}

// local is an in-process console session: the incremental maintainer
// plus the parsed program (for goal validation on the shared
// core.ParseGoal path).
type local struct {
	m    *eval.Maintainer
	prog *ast.Program
}

func newSession(src string) (*local, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	m, err := eval.NewMaintainer(prog, eval.SetOfDerivations, eval.Options{})
	if err != nil {
		return nil, err
	}
	return &local{m: m, prog: prog}, nil
}

// repl runs the command loop; factored for tests.
func repl(in io.Reader, out io.Writer, s *local) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := execute(out, s, line); done {
			return
		}
	}
}

const helpText = "  + fact(args).      assert\n  - fact(args).      retract\n  ? pred/arity       list tuples\n  ? goal(args)       point query (variables allowed)\n  ?                  list all derived\n  proof fact(args).  proof tree\n  stats              counters\n  quit               exit"

// execute runs one command against the local session; returns true to
// quit.
func execute(out io.Writer, s *local, line string) bool {
	m := s.m
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		fmt.Fprintln(out, helpText)
	case line == "stats":
		st := m.Stats()
		fmt.Fprintf(out, "  join ops: %d, scan ops: %d, derivations held: %d, cascade steps: %d\n",
			st.JoinOps, st.ScanOps, st.DerivationsHeld, st.CascadeSteps)
	case line == "?":
		for _, pred := range m.DB().Predicates() {
			fmt.Fprintf(out, "  %% %s\n", pred)
			for _, t := range m.DB().Tuples(pred) {
				fmt.Fprintf(out, "  %v\n", t)
			}
		}
	case strings.HasPrefix(line, "? "):
		arg := strings.TrimSpace(line[2:])
		if !strings.Contains(arg, "(") {
			// pred/arity listing.
			for _, t := range m.DB().Tuples(arg) {
				fmt.Fprintf(out, "  %v\n", t)
			}
			return false
		}
		// Goal query on the shared validation path: same typed errors
		// as Cluster.Query and the daemon.
		lit, err := core.ParseGoal(s.prog, arg)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, t := range core.MatchGoal(lit, m.DB().Tuples(lit.PredKey())) {
			fmt.Fprintf(out, "  %v\n", t)
		}
	case strings.HasPrefix(line, "+ "), strings.HasPrefix(line, "- "):
		tup, err := parseFact(line[2:])
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		var changes []eval.Change
		if line[0] == '+' {
			changes, err = m.Insert(tup)
		} else {
			changes, err = m.Delete(tup)
		}
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, c := range changes {
			op := "+"
			if !c.Insert {
				op = "-"
			}
			fmt.Fprintf(out, "  %s %v\n", op, c.Tuple)
		}
	case strings.HasPrefix(line, "proof "):
		tup, err := parseFact(strings.TrimSpace(line[len("proof "):]))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		tree, err := m.ProofTree(tup)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, l := range strings.Split(strings.TrimRight(tree.String(), "\n"), "\n") {
			fmt.Fprintf(out, "  %s\n", l)
		}
	default:
		fmt.Fprintf(out, "  unknown command (try help)\n")
	}
	return false
}

// remoteRepl drives a live snlogd over the wire protocol.
func remoteRepl(in io.Reader, out io.Writer, c *serve.Client) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := remoteExecute(out, c, line); done {
			return
		}
	}
}

// remoteExecute runs one command against a daemon; returns true to
// quit.
func remoteExecute(out io.Writer, c *serve.Client, line string) bool {
	ctx := context.Background()
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		fmt.Fprintln(out, helpText)
	case line == "stats":
		stats, err := c.Stats(ctx)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		names := make([]string, 0, len(stats))
		for n := range stats {
			if strings.HasPrefix(n, "serve.") {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(out, "  %s: %d\n", n, stats[n])
		}
	case line == "?":
		fmt.Fprintln(out, "  error: bare ? is local-only; query a goal, e.g. ? reach(a, X)")
	case strings.HasPrefix(line, "? "):
		arg := strings.TrimSpace(line[2:])
		if !strings.Contains(arg, "(") {
			// pred/arity: expand to an all-free goal.
			g, err := goalForPred(arg)
			if err != nil {
				fmt.Fprintf(out, "  error: %v\n", err)
				return false
			}
			arg = g
		}
		tuples, err := c.Query(ctx, arg)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, t := range tuples {
			fmt.Fprintf(out, "  %s\n", t)
		}
	case strings.HasPrefix(line, "+ "):
		if err := c.Inject(ctx, 0, strings.TrimSuffix(strings.TrimSpace(line[2:]), ".")); err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
		}
	case strings.HasPrefix(line, "- "):
		now, err := c.Sync(ctx)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		if err := c.DeleteAt(ctx, now+1, 0, strings.TrimSuffix(strings.TrimSpace(line[2:]), ".")); err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
		}
	case strings.HasPrefix(line, "proof "):
		expl, err := c.Explain(ctx, strings.TrimSuffix(strings.TrimSpace(line[len("proof "):]), "."))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, l := range strings.Split(strings.TrimRight(expl, "\n"), "\n") {
			fmt.Fprintf(out, "  %s\n", l)
		}
	default:
		fmt.Fprintf(out, "  unknown command (try help)\n")
	}
	return false
}

// goalForPred turns "reach/2" into the all-free goal "reach(V0, V1)".
func goalForPred(key string) (string, error) {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return "", fmt.Errorf("want pred/arity or a goal, got %q", key)
	}
	n, err := strconv.Atoi(key[i+1:])
	if err != nil || n < 0 {
		return "", fmt.Errorf("bad arity in %q", key)
	}
	vars := make([]string, n)
	for j := range vars {
		vars[j] = "V" + strconv.Itoa(j)
	}
	return key[:i] + "(" + strings.Join(vars, ", ") + ")", nil
}

// parseFact parses "pred(args)." (trailing dot optional) into a tuple,
// on the shared serve.ParseFact path.
func parseFact(src string) (eval.Tuple, error) {
	return serve.ParseFact(src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlogrepl:", err)
	os.Exit(1)
}
