// Command snlogrepl is an interactive console for the deductive
// language: load a program, assert and retract facts, and watch derived
// predicates update incrementally (set-of-derivations maintenance) —
// the centralized counterpart of what the distributed engine does
// in-network, handy for developing programs before deployment.
//
// With -connect it speaks the snlogd wire protocol instead, turning the
// same console into a client of a live deployment: queries go through
// the daemon's magic-set point-query path and result cache, proofs
// through its provenance store.
//
// With -watch it becomes snltop: it polls a daemon's admin endpoint
// (snlogd -admin) and renders a refreshing table of query rate, cache
// hit rate, batch flush mix and latency quantiles.
//
// Usage:
//
//	snlogrepl [program.snl]
//	snlogrepl -connect 127.0.0.1:7654
//	snlogrepl -watch 127.0.0.1:8090
//
// Commands:
//
//	assert:      + fact(args).      (-connect: injects at node 0)
//	retract:     - fact(args).
//	query:       ? pred/arity       (lists everything derived for it)
//	             ? goal(args)       (point query, variables allowed)
//	             ?                  (local only: list all derived)
//	proof tree:  proof fact(args).
//	counters:    stats
//	exit:        quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
	"repro/internal/serve"
)

func main() {
	connect := flag.String("connect", "", "snlogd address to drive instead of a local session")
	watch := flag.String("watch", "", "snlogd admin address (host:port or URL) to poll and render live stats (snltop mode)")
	interval := flag.Duration("interval", 2*time.Second, "watch poll interval")
	rounds := flag.Int("rounds", 0, "watch iterations before exiting (0 = until interrupted)")
	flag.Parse()
	if *watch != "" {
		base := *watch
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		watchLoop(os.Stdout, func() (map[string]int64, error) {
			return fetchSnapshot(base)
		}, *interval, *rounds, true)
		return
	}
	if *connect != "" {
		c, err := serve.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		fmt.Printf("snlogrepl — connected to %s (help for commands)\n", *connect)
		remoteRepl(os.Stdin, os.Stdout, c)
		return
	}
	src := ""
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	m, err := newSession(src)
	if err != nil {
		fatal(err)
	}
	fmt.Println("snlogrepl — deductive console (help for commands)")
	repl(os.Stdin, os.Stdout, m)
}

// local is an in-process console session: the incremental maintainer
// plus the parsed program (for goal validation on the shared
// core.ParseGoal path).
type local struct {
	m    *eval.Maintainer
	prog *ast.Program
}

func newSession(src string) (*local, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	m, err := eval.NewMaintainer(prog, eval.SetOfDerivations, eval.Options{})
	if err != nil {
		return nil, err
	}
	return &local{m: m, prog: prog}, nil
}

// repl runs the command loop; factored for tests.
func repl(in io.Reader, out io.Writer, s *local) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := execute(out, s, line); done {
			return
		}
	}
}

const helpText = "  + fact(args).      assert\n  - fact(args).      retract\n  ? pred/arity       list tuples\n  ? goal(args)       point query (variables allowed)\n  ?                  list all derived\n  proof fact(args).  proof tree\n  stats              counters\n  quit               exit"

// execute runs one command against the local session; returns true to
// quit.
func execute(out io.Writer, s *local, line string) bool {
	m := s.m
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		fmt.Fprintln(out, helpText)
	case line == "stats":
		st := m.Stats()
		fmt.Fprintf(out, "  join ops: %d, scan ops: %d, derivations held: %d, cascade steps: %d\n",
			st.JoinOps, st.ScanOps, st.DerivationsHeld, st.CascadeSteps)
	case line == "?":
		for _, pred := range m.DB().Predicates() {
			fmt.Fprintf(out, "  %% %s\n", pred)
			for _, t := range m.DB().Tuples(pred) {
				fmt.Fprintf(out, "  %v\n", t)
			}
		}
	case strings.HasPrefix(line, "? "):
		arg := strings.TrimSpace(line[2:])
		if !strings.Contains(arg, "(") {
			// pred/arity listing.
			for _, t := range m.DB().Tuples(arg) {
				fmt.Fprintf(out, "  %v\n", t)
			}
			return false
		}
		// Goal query on the shared validation path: same typed errors
		// as Cluster.Query and the daemon.
		lit, err := core.ParseGoal(s.prog, arg)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, t := range core.MatchGoal(lit, m.DB().Tuples(lit.PredKey())) {
			fmt.Fprintf(out, "  %v\n", t)
		}
	case strings.HasPrefix(line, "+ "), strings.HasPrefix(line, "- "):
		tup, err := parseFact(line[2:])
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		var changes []eval.Change
		if line[0] == '+' {
			changes, err = m.Insert(tup)
		} else {
			changes, err = m.Delete(tup)
		}
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, c := range changes {
			op := "+"
			if !c.Insert {
				op = "-"
			}
			fmt.Fprintf(out, "  %s %v\n", op, c.Tuple)
		}
	case strings.HasPrefix(line, "proof "):
		tup, err := parseFact(strings.TrimSpace(line[len("proof "):]))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		tree, err := m.ProofTree(tup)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, l := range strings.Split(strings.TrimRight(tree.String(), "\n"), "\n") {
			fmt.Fprintf(out, "  %s\n", l)
		}
	default:
		fmt.Fprintf(out, "  unknown command (try help)\n")
	}
	return false
}

// remoteRepl drives a live snlogd over the wire protocol.
func remoteRepl(in io.Reader, out io.Writer, c *serve.Client) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := remoteExecute(out, c, line); done {
			return
		}
	}
}

// remoteExecute runs one command against a daemon; returns true to
// quit.
func remoteExecute(out io.Writer, c *serve.Client, line string) bool {
	ctx := context.Background()
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		fmt.Fprintln(out, helpText)
	case line == "stats":
		stats, err := c.Stats(ctx)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		names := make([]string, 0, len(stats))
		for n := range stats {
			if strings.HasPrefix(n, "serve.") {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(out, "  %s: %d\n", n, stats[n])
		}
	case line == "?":
		fmt.Fprintln(out, "  error: bare ? is local-only; query a goal, e.g. ? reach(a, X)")
	case strings.HasPrefix(line, "? "):
		arg := strings.TrimSpace(line[2:])
		if !strings.Contains(arg, "(") {
			// pred/arity: expand to an all-free goal.
			g, err := goalForPred(arg)
			if err != nil {
				fmt.Fprintf(out, "  error: %v\n", err)
				return false
			}
			arg = g
		}
		tuples, err := c.Query(ctx, arg)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, t := range tuples {
			fmt.Fprintf(out, "  %s\n", t)
		}
	case strings.HasPrefix(line, "+ "):
		if err := c.Inject(ctx, 0, strings.TrimSuffix(strings.TrimSpace(line[2:]), ".")); err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
		}
	case strings.HasPrefix(line, "- "):
		now, err := c.Sync(ctx)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		if err := c.DeleteAt(ctx, now+1, 0, strings.TrimSuffix(strings.TrimSpace(line[2:]), ".")); err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
		}
	case strings.HasPrefix(line, "proof "):
		expl, err := c.Explain(ctx, strings.TrimSuffix(strings.TrimSpace(line[len("proof "):]), "."))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, l := range strings.Split(strings.TrimRight(expl, "\n"), "\n") {
			fmt.Fprintf(out, "  %s\n", l)
		}
	default:
		fmt.Fprintf(out, "  unknown command (try help)\n")
	}
	return false
}

// fetchSnapshot pulls the flat name → value metric map from a daemon's
// admin /snapshot endpoint.
func fetchSnapshot(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/snapshot: %s", base, resp.Status)
	}
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// watchLoop is the snltop driver: poll, diff against the previous
// sample, render. rounds 0 polls forever; clear toggles the ANSI
// clear-and-home prefix (off in tests). A failed poll renders an error
// line and keeps polling — the daemon restarting should not kill the
// watcher.
func watchLoop(out io.Writer, fetch func() (map[string]int64, error), interval time.Duration, rounds int, clear bool) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var prev map[string]int64
	last := time.Now()
	for i := 0; rounds <= 0 || i < rounds; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := fetch()
		now := time.Now()
		if clear {
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		if err != nil {
			fmt.Fprintf(out, "snltop: %v\n", err)
			continue
		}
		fmt.Fprint(out, renderWatch(prev, cur, now.Sub(last)))
		prev, last = cur, now
	}
}

// renderWatch formats one snltop frame from two consecutive snapshots.
// Rates are the deltas over the poll window; totals, quantiles and the
// daemon's own 1-minute gauges come from the current snapshot.
func renderWatch(prev, cur map[string]int64, elapsed time.Duration) string {
	rate := func(name string) int64 {
		if prev == nil || elapsed <= 0 {
			return 0
		}
		return int64(float64(cur[name]-prev[name])/elapsed.Seconds() + 0.5)
	}
	hitRate := func(hits, misses int64) string {
		if hits+misses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "snltop — %s window\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  queries   total %-10d qps %-8d 1m avg %d\n",
		cur["serve.queries"], rate("serve.queries"), cur["serve.qps_1m"])
	// Indexing a nil prev map yields 0, so the first frame's window
	// figures are the lifetime ones.
	dh, dm := cur["serve.cache.hits"]-prev["serve.cache.hits"], cur["serve.cache.misses"]-prev["serve.cache.misses"]
	fmt.Fprintf(&b, "  cache     hits %-11d misses %-5d hit rate %s (window %s)\n",
		cur["serve.cache.hits"], cur["serve.cache.misses"],
		hitRate(cur["serve.cache.hits"], cur["serve.cache.misses"]), hitRate(dh, dm))
	fmt.Fprintf(&b, "  batches   size %-11d deadline %-3d fresh %-6d explicit %-3d writes/s %d\n",
		cur["serve.batch.flush.size"], cur["serve.batch.flush.deadline"],
		cur["serve.batch.flush.fresh"], cur["serve.batch.flush.explicit"],
		rate("serve.batch.writes"))
	fmt.Fprintf(&b, "  latency   p50 %-4dµs   p99 %-6dµs  max %-6dµs  stale served %d\n",
		cur["serve.query_latency.p50"], cur["serve.query_latency.p99"],
		cur["serve.query_latency.max"], cur["serve.stale.served"])
	if _, ok := cur["nsim.events"]; ok {
		fmt.Fprintf(&b, "  sim       events %-9d events/s %-4d 1m avg %d\n",
			cur["nsim.events"], rate("nsim.events"), cur["nsim.events_per_sec_1m"])
	}
	return b.String()
}

// goalForPred turns "reach/2" into the all-free goal "reach(V0, V1)".
func goalForPred(key string) (string, error) {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return "", fmt.Errorf("want pred/arity or a goal, got %q", key)
	}
	n, err := strconv.Atoi(key[i+1:])
	if err != nil || n < 0 {
		return "", fmt.Errorf("bad arity in %q", key)
	}
	vars := make([]string, n)
	for j := range vars {
		vars[j] = "V" + strconv.Itoa(j)
	}
	return key[:i] + "(" + strings.Join(vars, ", ") + ")", nil
}

// parseFact parses "pred(args)." (trailing dot optional) into a tuple,
// on the shared serve.ParseFact path.
func parseFact(src string) (eval.Tuple, error) {
	return serve.ParseFact(src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlogrepl:", err)
	os.Exit(1)
}
