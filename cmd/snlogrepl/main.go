// Command snlogrepl is an interactive console for the deductive
// language: load a program, assert and retract facts, and watch derived
// predicates update incrementally (set-of-derivations maintenance) —
// the centralized counterpart of what the distributed engine does
// in-network, handy for developing programs before deployment.
//
// Usage:
//
//	snlogrepl [program.snl]
//
// Commands:
//
//	assert:      + fact(args).
//	retract:     - fact(args).
//	query:       ? pred/arity     (bare ? lists everything derived)
//	proof tree:  proof fact(args).
//	counters:    stats
//	exit:        quit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/datalog/ast"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
)

func main() {
	src := ""
	if len(os.Args) > 1 {
		b, err := os.ReadFile(os.Args[1])
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	m, err := newSession(src)
	if err != nil {
		fatal(err)
	}
	fmt.Println("snlogrepl — deductive console (help for commands)")
	repl(os.Stdin, os.Stdout, m)
}

func newSession(src string) (*eval.Maintainer, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return eval.NewMaintainer(prog, eval.SetOfDerivations, eval.Options{})
}

// repl runs the command loop; factored for tests.
func repl(in io.Reader, out io.Writer, m *eval.Maintainer) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := execute(out, m, line); done {
			return
		}
	}
}

// execute runs one command; returns true to quit.
func execute(out io.Writer, m *eval.Maintainer, line string) bool {
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		fmt.Fprintln(out, "  + fact(args).      assert\n  - fact(args).      retract\n  ? pred/arity       list tuples\n  ?                  list all derived\n  proof fact(args).  proof tree\n  stats              counters\n  quit               exit")
	case line == "stats":
		st := m.Stats()
		fmt.Fprintf(out, "  join ops: %d, scan ops: %d, derivations held: %d, cascade steps: %d\n",
			st.JoinOps, st.ScanOps, st.DerivationsHeld, st.CascadeSteps)
	case line == "?":
		for _, pred := range m.DB().Predicates() {
			fmt.Fprintf(out, "  %% %s\n", pred)
			for _, t := range m.DB().Tuples(pred) {
				fmt.Fprintf(out, "  %v\n", t)
			}
		}
	case strings.HasPrefix(line, "? "):
		pred := strings.TrimSpace(line[2:])
		for _, t := range m.DB().Tuples(pred) {
			fmt.Fprintf(out, "  %v\n", t)
		}
	case strings.HasPrefix(line, "+ "), strings.HasPrefix(line, "- "):
		tup, err := parseFact(line[2:])
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		var changes []eval.Change
		if line[0] == '+' {
			changes, err = m.Insert(tup)
		} else {
			changes, err = m.Delete(tup)
		}
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, c := range changes {
			op := "+"
			if !c.Insert {
				op = "-"
			}
			fmt.Fprintf(out, "  %s %v\n", op, c.Tuple)
		}
	case strings.HasPrefix(line, "proof "):
		tup, err := parseFact(strings.TrimSpace(line[len("proof "):]))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		tree, err := m.ProofTree(tup)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			return false
		}
		for _, l := range strings.Split(strings.TrimRight(tree.String(), "\n"), "\n") {
			fmt.Fprintf(out, "  %s\n", l)
		}
	default:
		fmt.Fprintf(out, "  unknown command (try help)\n")
	}
	return false
}

// parseFact parses "pred(args)." (trailing dot optional) into a tuple.
func parseFact(src string) (eval.Tuple, error) {
	src = strings.TrimSpace(src)
	if !strings.HasSuffix(src, ".") {
		src += "."
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return eval.Tuple{}, err
	}
	if len(prog.Rules) != 1 || !prog.Rules[0].IsFact() {
		return eval.Tuple{}, fmt.Errorf("not a ground fact: %s", src)
	}
	h := prog.Rules[0].Head
	args := make([]ast.Term, len(h.Args))
	copy(args, h.Args)
	return eval.Tuple{Pred: h.PredKey(), Args: args}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlogrepl:", err)
	os.Exit(1)
}
