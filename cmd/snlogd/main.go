// Command snlogd is the long-lived query-serving daemon: it compiles a
// program onto a simulated deployment, opens a serving session
// (internal/serve) and answers point queries, injections, deletions,
// provenance explanations and subscriptions for many concurrent clients
// over newline-delimited JSON on TCP.
//
// Usage:
//
//	snlogd -listen 127.0.0.1:7654 program.snl
//	snlogd -grid 6 -seed 1 program.snl
//	echo '{"id":1,"op":"query","arg":"reach(a, X)"}' | nc 127.0.0.1 7654
//
// The wire protocol is documented in internal/serve/wire.go; the REPL
// (snlogrepl -connect ADDR) and serve.Client speak it. On SIGINT or
// SIGTERM the daemon drains connections and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	snlog "repro"
	"repro/internal/obs/export"
	"repro/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7654", "TCP listen address")
	grid := flag.Int("grid", 4, "deploy on an m x m grid")
	seed := flag.Int64("seed", 1, "simulation seed")
	cache := flag.Int("cache", 0, "result cache entries (0 = default 256, negative = disabled)")
	cacheShards := flag.Int("cache-shards", 0, "result cache shards (0 = default 8, rounded up to a power of two)")
	loss := flag.Float64("loss", 0, "radio loss rate [0, 1)")
	shards := flag.Int("shards", 0, "parallel scheduler shards (0 = single-threaded)")
	noProv := flag.Bool("no-provenance", false, "skip provenance capture (explain disabled)")
	batch := flag.Int("batch", 0, "write batch size: the Nth buffered write flushes (0 = default 64, 1 = apply immediately)")
	batchDelay := flag.Duration("batch-delay", 0, "write batch deadline (0 = default 2ms, negative = size/freshness flushes only)")
	stale := flag.Int64("stale", 0, "default staleness bound for queries that don't set one: max unapplied writes a served answer may omit (0 = always fresh, negative = unbounded)")
	admin := flag.String("admin", "", "admin HTTP listen address (/metrics, /healthz, /snapshot, /trace, pprof); empty = disabled")
	sampleInterval := flag.Duration("sample-interval", 5*time.Second, "admin rate-gauge sampling interval (serve.qps_1m, nsim.events_per_sec_1m)")
	traceCap := flag.Int("trace", 0, "event trace ring capacity for the admin /trace endpoint (0 = no trace)")
	spans := flag.Int("spans", 0, "per-query span ring capacity for /trace/query/<id> (0 = default 4096, negative = disabled)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: snlogd [flags] program.snl")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	deploy := []snlog.Option{snlog.WithSeed(*seed)}
	if *loss > 0 {
		deploy = append(deploy, snlog.WithLoss(*loss))
	}
	if *shards > 1 {
		deploy = append(deploy, snlog.WithShards(*shards))
	}
	if *traceCap > 0 {
		deploy = append(deploy, snlog.WithTrace(*traceCap))
	}
	s, err := serve.Open(context.Background(), string(src), snlog.Grid(*grid), serve.Options{
		Deploy:       deploy,
		CacheSize:    *cache,
		CacheShards:  *cacheShards,
		BatchSize:    *batch,
		BatchDelay:   *batchDelay,
		NoProvenance: *noProv,
		Spans:        *spans,
	})
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(s, ln, serve.WithDefaultMaxLag(*stale))
	fmt.Printf("snlogd: serving %s on %s (%d nodes)\n", flag.Arg(0), srv.Addr(), s.Cluster().Size())

	// Live telemetry is strictly opt-in: without -admin no sampler runs,
	// no HTTP listener binds, and the serve path is byte-for-byte the
	// pre-admin daemon (pinned by make obs-guard).
	if *admin != "" {
		reg := s.Cluster().Registry()
		sampler := export.NewSampler(reg, *sampleInterval, time.Minute)
		sampler.ExposeRate("serve.qps_1m", "serve.queries")
		sampler.ExposeRate("nsim.events_per_sec_1m", "nsim.events")
		sampler.Start()
		defer sampler.Close()
		adm, err := export.StartAdmin(*admin, export.Source{
			Registry: reg,
			Trace:    s.Cluster().Trace(),
			Spans:    s.Spans(),
		})
		if err != nil {
			fatal(err)
		}
		defer adm.Close()
		fmt.Printf("snlogd: admin on http://%s (metrics, snapshot, trace, pprof)\n", adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("snlogd: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlogd:", err)
	os.Exit(1)
}
