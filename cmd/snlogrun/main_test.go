package main

import (
	"os"
	"testing"

	snlog "repro"
)

var (
	osReadFile  = os.ReadFile
	osWriteFile = os.WriteFile
)

func TestLoadTimelineAndRun(t *testing.T) {
	cluster, err := snlog.Deploy(snlog.Grid(8), mustRead(t, "testdata/uncov.snl"), snlog.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := loadTimeline(cluster, "testdata/uncov.facts"); err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	// Friendly covered enemy A then left: both alerts stand at the end.
	if n := len(cluster.Results("uncov/2")); n != 2 {
		t.Errorf("uncov = %v", cluster.Results("uncov/2"))
	}
	// And the log shows the retract/reinstate cycle: 3 inserts, 1 delete.
	ins, del := 0, 0
	for _, ev := range cluster.Engine.ResultLog {
		if ev.Insert {
			ins++
		} else {
			del++
		}
	}
	if ins != 3 || del != 1 {
		t.Errorf("log inserts=%d deletes=%d", ins, del)
	}
}

func TestLoadTimelineErrors(t *testing.T) {
	cluster, err := snlog.Deploy(snlog.Grid(4), `.base s/1.
d(X) :- s(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadTimeline(cluster, "testdata/nonexistent"); err == nil {
		t.Error("missing file should error")
	}
	bad := t.TempDir() + "/bad.facts"
	writeFile(t, bad, "0 1 ? s(1)\n")
	if err := loadTimeline(cluster, bad); err == nil {
		t.Error("bad op should error")
	}
	bad2 := t.TempDir() + "/bad2.facts"
	writeFile(t, bad2, "0 1 + not a fact\n")
	if err := loadTimeline(cluster, bad2); err == nil {
		t.Error("malformed fact should error")
	}
	ok := t.TempDir() + "/ok.facts"
	writeFile(t, ok, "% comment\n\n0 1 + s(1)\n")
	if err := loadTimeline(cluster, ok); err != nil {
		t.Errorf("comments and blanks should be skipped: %v", err)
	}
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := readFileHelper(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func readFileHelper(path string) (string, error) {
	b, err := osReadFile(path)
	return string(b), err
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := osWriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
