// Command snlogrun deploys a deductive program onto a simulated sensor
// network, feeds it a fact timeline, and prints the derived results plus
// the communication-cost accounting.
//
// Usage:
//
//	snlogrun -grid 8 -facts timeline.txt program.snl
//	snlogrun -grid 6 -edges -scheme perpendicular program.snl
//
// The timeline file has one event per line:
//
//	<time> <node> + pred(arg, ...)     insertion
//	<time> <node> - pred(arg, ...)     deletion
//
// -edges additionally injects the network adjacency as g/2 facts at time
// 0 (what the shortest-path-tree programs consume).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	snlog "repro"
)

func main() {
	grid := flag.Int("grid", 8, "grid side length (m x m nodes)")
	schemeName := flag.String("scheme", "perpendicular", "join scheme: perpendicular | naive-broadcast | local-storage | centroid | centralized")
	server := flag.Int("server", 0, "server node for the centralized scheme")
	loss := flag.Float64("loss", 0, "message loss rate")
	seed := flag.Int64("seed", 1, "simulation seed")
	factsFile := flag.String("facts", "", "fact timeline file")
	edges := flag.Bool("edges", false, "inject grid adjacency as g/2 facts")
	multipass := flag.Bool("multipass", false, "use the multiple-pass join scheme")
	collect := flag.String("collect", "", "after the timeline settles, run a TAG collection epoch for this aggregate predicate (name/arity) at node 0")
	flag.Parse()

	if flag.NArg() == 0 {
		fatal(fmt.Errorf("usage: snlogrun [flags] program.snl"))
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var scheme snlog.Scheme
	switch *schemeName {
	case "perpendicular":
		scheme = snlog.Perpendicular
	case "naive-broadcast":
		scheme = snlog.NaiveBroadcast
	case "local-storage":
		scheme = snlog.LocalStorage
	case "centralized":
		scheme = snlog.Centralized
	case "centroid":
		scheme = snlog.Centroid
	default:
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	opts := []snlog.Option{
		snlog.WithScheme(scheme),
		snlog.WithServer(*server),
		snlog.WithLoss(*loss),
		snlog.WithSeed(*seed),
	}
	if *multipass {
		opts = append(opts, snlog.WithMultiPass())
	}
	cluster, err := snlog.Deploy(snlog.Grid(*grid), string(srcBytes), opts...)
	if err != nil {
		fatal(err)
	}

	if *edges {
		for _, n := range cluster.Network.Nodes() {
			for _, nb := range n.Neighbors() {
				if err := cluster.InjectAt(0, int(n.ID),
					snlog.NewTuple("g", snlog.NodeSym(int(n.ID)), snlog.NodeSym(int(nb)))); err != nil {
					fatal(err)
				}
			}
		}
	}
	if *factsFile != "" {
		if err := loadTimeline(cluster, *factsFile); err != nil {
			fatal(err)
		}
	}

	end := cluster.Run()
	if *collect != "" {
		if err := cluster.CollectAggregate(end+10, *collect, 0); err != nil {
			fatal(err)
		}
		end = cluster.Run()
		fmt.Printf("%% %s (TAG collection at node 0)\n", *collect)
		for _, t := range cluster.AggregateResult(*collect) {
			fmt.Println(t)
		}
	}

	prog, err := snlog.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	preds := prog.Queries
	if len(preds) == 0 {
		preds = prog.DerivedPredicates()
	}
	for _, pred := range preds {
		fmt.Printf("%% %s\n", pred)
		for _, t := range cluster.Results(pred) {
			fmt.Println(t)
		}
	}
	st := cluster.Stats()
	fmt.Printf("%% finished at t=%d: %d messages, %d bytes, %d dropped, max node load %d\n",
		end, st.Messages, st.Bytes, st.Dropped, st.MaxNodeLoad)
	for kind, n := range st.ByKind {
		fmt.Printf("%%   %-8s %d\n", kind, n)
	}
}

// loadTimeline parses and schedules the fact events.
func loadTimeline(c *snlog.Cluster, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		var at int64
		var node int
		var op string
		rest := ""
		n, err := fmt.Sscanf(line, "%d %d %1s %s", &at, &node, &op, &rest)
		if err != nil || n < 4 {
			return fmt.Errorf("%s:%d: want '<time> <node> +|- fact(...)': %q", path, lineNo, line)
		}
		// Sscanf stops %s at whitespace; re-extract the fact text.
		idx := strings.Index(line, op)
		factSrc := strings.TrimSpace(line[idx+1:])
		rule, err := snlog.Parse(factSrc + ".")
		if err != nil || len(rule.Rules) != 1 || !rule.Rules[0].IsFact() {
			return fmt.Errorf("%s:%d: bad fact %q: %v", path, lineNo, factSrc, err)
		}
		head := rule.Rules[0].Head
		tup := snlog.NewTuple(head.Predicate, head.Args...)
		switch op {
		case "+":
			err = c.InjectAt(at, node, tup)
		case "-":
			err = c.DeleteAt(at, node, tup)
		default:
			return fmt.Errorf("%s:%d: bad op %q", path, lineNo, op)
		}
		if err != nil {
			return fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlogrun:", err)
	os.Exit(1)
}
