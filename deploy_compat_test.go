package snlog

import (
	"reflect"
	"testing"
)

const compatSrc = `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
.query out/2.
`

// runCompatWorkload deploys via the given constructor, drives a fixed
// workload, and returns the cluster's Stats plus its derived results.
func runCompatWorkload(t *testing.T, deploy func() (*Cluster, error)) (Stats, []Tuple) {
	t.Helper()
	c, err := deploy()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.InjectAt(int64(i*40), (i*5)%c.Size(), NewTuple("ra", Int(int64(i)), Int(int64(i%3))))
		c.InjectAt(int64(i*40+15), (i*7+2)%c.Size(), NewTuple("rb", Int(int64(i%3)), Int(int64(i))))
	}
	c.DeleteAt(900, (3*5)%c.Size(), NewTuple("ra", Int(3), Int(0)))
	c.Run()
	return c.Stats(), c.Results("out/2")
}

// The deprecated deployment entry points are thin wrappers over
// Deploy(Topology, ...); they must stay bit-for-bit equivalent — same
// topology build, same seed threading, same Stats — or migrating
// callers would silently change their measurements.
func TestDeployGridMatchesDeploy(t *testing.T) {
	opt := Options{Seed: 21, MaxSkew: 3, LossRate: 0.05, Retries: 2}
	oldStats, oldRes := runCompatWorkload(t, func() (*Cluster, error) {
		return DeployGrid(6, compatSrc, opt)
	})
	newStats, newRes := runCompatWorkload(t, func() (*Cluster, error) {
		return Deploy(Grid(6), compatSrc,
			WithSeed(21), WithMaxSkew(3), WithLoss(0.05), WithRetries(2))
	})
	if !reflect.DeepEqual(oldStats, newStats) {
		t.Errorf("DeployGrid stats diverge from Deploy(Grid):\nold %+v\nnew %+v", oldStats, newStats)
	}
	if !reflect.DeepEqual(oldRes, newRes) {
		t.Errorf("DeployGrid results diverge: %v vs %v", oldRes, newRes)
	}
}

func TestDeployRandomMatchesDeploy(t *testing.T) {
	opt := Options{Seed: 9, MaxSkew: 2}
	oldStats, oldRes := runCompatWorkload(t, func() (*Cluster, error) {
		return DeployRandom(30, 8, 2.8, compatSrc, opt)
	})
	newStats, newRes := runCompatWorkload(t, func() (*Cluster, error) {
		return Deploy(Random(30, 8, 2.8), compatSrc, WithSeed(9), WithMaxSkew(2))
	})
	if !reflect.DeepEqual(oldStats, newStats) {
		t.Errorf("DeployRandom stats diverge from Deploy(Random):\nold %+v\nnew %+v", oldStats, newStats)
	}
	if !reflect.DeepEqual(oldRes, newRes) {
		t.Errorf("DeployRandom results diverge: %v vs %v", oldRes, newRes)
	}
}
