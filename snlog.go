// Package snlog is a deductive framework for programming sensor
// networks — a from-scratch reproduction of "Deductive Framework for
// Programming Sensor Networks" (ICDE 2009).
//
// Applications are written as logic programs (Datalog extended with
// function symbols, restricted negation and built-ins). The framework
// compiles a program into per-node code that evaluates it inside a
// multi-hop sensor network, bottom-up, incrementally and asynchronously,
// joining distributed data streams with the (Generalized) Perpendicular
// Approach and maintaining results under insertions and deletions with
// derivation sets.
//
// Quick start:
//
//	cluster, _ := snlog.DeployGrid(8, `
//	    .base temp/2.
//	    alert(N, T) :- temp(N, T), T > 90.
//	    .query alert/2.
//	`, snlog.Options{})
//	cluster.Inject(12, snlog.NewTuple("temp", snlog.Sym("n12"), snlog.Int(95)))
//	cluster.Run()
//	fmt.Println(cluster.Results("alert/2"))
//
// The package front-ends the full stack: parser (internal/datalog/parser),
// static analysis incl. XY-stratification (internal/datalog/analysis),
// magic sets (internal/datalog/magic), the centralized reference
// evaluator (internal/datalog/eval), and the distributed engine over the
// discrete-event radio simulator (internal/core, internal/nsim).
package snlog

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datalog/analysis"
	"repro/internal/datalog/ast"
	"repro/internal/datalog/builtin"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/magic"
	"repro/internal/datalog/parser"
	"repro/internal/gpa"
	"repro/internal/nsim"
	"repro/internal/topo"
)

// Re-exported core types.
type (
	// Program is a parsed deductive program.
	Program = ast.Program
	// Term is a logic term (constant, variable or compound).
	Term = ast.Term
	// Tuple is a ground fact.
	Tuple = eval.Tuple
	// Database is a set of tuples per predicate.
	Database = eval.Database
	// Analysis is the result of static program analysis.
	Analysis = analysis.Result
	// Registry holds built-in predicates and functions.
	Registry = builtin.Registry
)

// Scheme selects the in-network join strategy.
type Scheme = gpa.Scheme

// Available join schemes.
const (
	Perpendicular  = gpa.Perpendicular
	NaiveBroadcast = gpa.NaiveBroadcast
	LocalStorage   = gpa.LocalStorage
	Centralized    = gpa.Centralized
	Centroid       = gpa.Centroid
)

// Term constructors.
var (
	// Int builds an integer constant.
	Int = ast.Int64
	// Flt builds a floating-point constant.
	Flt = ast.Float64
	// Sym builds a symbolic constant.
	Sym = ast.Symbol
	// Str builds a string constant.
	Str = ast.String_
	// Var builds a variable.
	Var = ast.Var
	// Cmp builds a compound term f(args...).
	Cmp = ast.Compound
	// List builds a proper list.
	List = ast.List
)

// Incremental maintenance (centralized): the three approaches of
// Section IV-A, re-exported for applications that maintain views off-network.
type (
	// Maintainer incrementally maintains derived predicates under
	// insertions and deletions.
	Maintainer = eval.Maintainer
	// MaintMode selects the maintenance approach.
	MaintMode = eval.Mode
	// ProofTree witnesses how a derived tuple follows from base facts.
	ProofTree = eval.ProofTree
)

// Maintenance approaches.
const (
	SetOfDerivations = eval.SetOfDerivations
	Counting         = eval.Counting
	Rederivation     = eval.Rederivation
)

// NewMaintainer builds an incremental view maintainer for a program.
func NewMaintainer(src string, mode MaintMode) (*Maintainer, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return eval.NewMaintainer(p, mode, eval.Options{})
}

// NewTuple builds a ground fact.
func NewTuple(pred string, args ...Term) Tuple { return eval.NewTuple(pred, args...) }

// Parse parses a deductive program.
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// Check parses and statically analyzes a program: safety, stratification
// and XY-stratification.
func Check(src string) (*Analysis, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return analysis.Analyze(p)
}

// Eval runs the centralized reference evaluator over the program plus
// the given base facts.
func Eval(src string, facts []Tuple) (*Database, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	ev, err := eval.New(p, eval.Options{})
	if err != nil {
		return nil, err
	}
	return ev.Run(facts)
}

// MagicRewrite applies the magic-set transformation for a query literal
// such as "anc(a, X)" and returns the rewritten program source and the
// answer predicate key.
func MagicRewrite(src, query string) (string, string, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return "", "", err
	}
	qr, err := parser.ParseRule(query + ".")
	if err != nil {
		return "", "", fmt.Errorf("snlog: bad query literal: %w", err)
	}
	tr, err := magic.Rewrite(p, qr.Head)
	if err != nil {
		return "", "", err
	}
	return tr.Program.String(), tr.AnswerPred, nil
}

// Options configures a deployment.
type Options struct {
	// Scheme is the GPA join scheme (default Perpendicular).
	Scheme Scheme
	// Server is the sink node for the Centralized scheme.
	Server int
	// MultiPass selects the multiple-pass join-computation scheme.
	MultiPass bool
	// SpatialRadius scopes storage/join regions (0 = unbounded).
	SpatialRadius float64
	// BandWidth generalizes PA rows/columns to geographic bands on
	// arbitrary topologies; DeployRandom defaults it to 1.5x the radio
	// range when unset.
	BandWidth float64
	// LossRate is the per-transmission message loss probability.
	LossRate float64
	// MaxSkew bounds the clock skew between any two nodes (τc).
	MaxSkew int64
	// Seed drives all randomness (delays, loss, skew).
	Seed int64
	// DefaultWindow is the sliding-window range for undeclared streams.
	DefaultWindow int64
	// Registry overrides the built-in registry.
	Registry *Registry
	// NaiveJoin disables the per-node argument-position indexes,
	// retaining full-scan lookups (A/B benchmarking; results identical).
	NaiveJoin bool
}

// Cluster is a deployed program: a simulated network running the
// compiled per-node code.
type Cluster struct {
	Engine  *core.Engine
	Network *nsim.Network
}

// DeployGrid compiles src onto an m×m grid network (the paper's
// evaluation topology).
func DeployGrid(m int, src string, opt Options) (*Cluster, error) {
	nw := topo.Grid(m, nsim.Config{
		Seed:     opt.Seed,
		LossRate: opt.LossRate,
		MaxSkew:  nsim.Time(opt.MaxSkew),
	})
	return deploy(nw, src, opt)
}

// DeployRandom compiles src onto n nodes placed uniformly at random in a
// side×side square with the given radio range (retrying until connected).
func DeployRandom(n int, side, radioRange float64, src string, opt Options) (*Cluster, error) {
	nw, err := topo.RandomGeometric(n, side, radioRange, opt.Seed+1, nsim.Config{
		Seed:     opt.Seed,
		LossRate: opt.LossRate,
		MaxSkew:  nsim.Time(opt.MaxSkew),
	})
	if err != nil {
		return nil, err
	}
	if opt.BandWidth == 0 && opt.Scheme == Perpendicular {
		opt.BandWidth = 1.5 * radioRange
	}
	return deploy(nw, src, opt)
}

func deploy(nw *nsim.Network, src string, opt Options) (*Cluster, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(nw, prog, core.Config{
		Scheme:        opt.Scheme,
		Server:        nsim.NodeID(opt.Server),
		MultiPass:     opt.MultiPass,
		SpatialRadius: opt.SpatialRadius,
		BandWidth:     opt.BandWidth,
		DefaultWindow: opt.DefaultWindow,
		Registry:      opt.Registry,
		NaiveJoin:     opt.NaiveJoin,
	})
	if err != nil {
		return nil, err
	}
	nw.Finalize()
	eng.Start()
	return &Cluster{Engine: eng, Network: nw}, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return c.Network.Len() }

// Inject generates a base fact at a node, now.
func (c *Cluster) Inject(node int, t Tuple) {
	c.Engine.Inject(nsim.NodeID(node), t)
}

// InjectAt generates a base fact at a node at an absolute virtual time.
func (c *Cluster) InjectAt(at int64, node int, t Tuple) {
	c.Engine.InjectAt(nsim.Time(at), nsim.NodeID(node), t)
}

// DeleteAt deletes a previously injected base fact at its source node.
func (c *Cluster) DeleteAt(at int64, node int, t Tuple) {
	c.Engine.InjectDeleteAt(nsim.Time(at), nsim.NodeID(node), t)
}

// Run processes the network to quiescence and returns the virtual end
// time.
func (c *Cluster) Run() int64 { return int64(c.Network.Run(0)) }

// RunUntil processes events up to the given virtual time.
func (c *Cluster) RunUntil(t int64) int64 { return int64(c.Network.Run(nsim.Time(t))) }

// Results returns the live derived tuples of a predicate ("name/arity").
func (c *Cluster) Results(pred string) []Tuple { return c.Engine.Derived(pred) }

// CollectAggregate schedules a TAG-style in-network collection epoch for
// an aggregate rule's head predicate, rooted at the sink node. The
// result is readable with AggregateResult after Run.
func (c *Cluster) CollectAggregate(at int64, pred string, sink int) error {
	return c.Engine.CollectAggregateAt(nsim.Time(at), pred, nsim.NodeID(sink))
}

// AggregateResult returns the tuples produced by the last completed
// collection epoch of an aggregate predicate.
func (c *Cluster) AggregateResult(pred string) []Tuple {
	return c.Engine.AggregateResult(pred)
}

// ResultDB snapshots all derived predicates.
func (c *Cluster) ResultDB() *Database { return c.Engine.DerivedDB() }

// Stats summarizes communication and memory costs.
type Stats struct {
	Messages    int64
	Bytes       int64
	Dropped     int64
	MaxNodeLoad int64
	ByKind      map[string]int64
	MaxMemory   int
	AvgMemory   float64
}

// Stats reads the cluster's accumulated cost counters.
func (c *Cluster) Stats() Stats {
	maxMem, avgMem := c.Engine.MaxMemoryTuples()
	byKind := make(map[string]int64, len(c.Network.KindCounts))
	for k, v := range c.Network.KindCounts {
		byKind[k] = v
	}
	return Stats{
		Messages:    c.Network.TotalSent,
		Bytes:       c.Network.TotalBytes,
		Dropped:     c.Network.TotalDropped,
		MaxNodeLoad: c.Network.MaxNodeLoad(),
		ByKind:      byKind,
		MaxMemory:   maxMem,
		AvgMemory:   avgMem,
	}
}

// GridID returns the node ID at grid coordinates (p, q) of an m×m grid.
func GridID(m, p, q int) int { return int(topo.GridID(m, p, q)) }

// NodeSym returns the default symbolic name of node id (used by
// placement-based programs such as the shortest-path tree).
func NodeSym(id int) Term { return ast.Symbol(fmt.Sprintf("n%d", id)) }
