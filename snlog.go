// Package snlog is a deductive framework for programming sensor
// networks — a from-scratch reproduction of "Deductive Framework for
// Programming Sensor Networks" (ICDE 2009).
//
// Applications are written as logic programs (Datalog extended with
// function symbols, restricted negation and built-ins). The framework
// compiles a program into per-node code that evaluates it inside a
// multi-hop sensor network, bottom-up, incrementally and asynchronously,
// joining distributed data streams with the (Generalized) Perpendicular
// Approach and maintaining results under insertions and deletions with
// derivation sets.
//
// Quick start:
//
//	cluster, _ := snlog.Deploy(snlog.Grid(8), `
//	    .base temp/2.
//	    alert(N, T) :- temp(N, T), T > 90.
//	    .query alert/2.
//	`)
//	cluster.Inject(12, snlog.NewTuple("temp", snlog.Sym("n12"), snlog.Int(95)))
//	cluster.Run()
//	fmt.Println(cluster.Results("alert/2"))
//	fmt.Println(cluster.Stats().Messages)
//
// Deployments accept functional options (WithScheme, WithLoss,
// WithRetries, WithBatchLinks, WithTrace, ...); every cluster carries
// a counter registry (Cluster.Snapshot) and, with WithTrace, a
// structured event trace (Cluster.WriteTrace).
//
// The package front-ends the full stack: parser (internal/datalog/parser),
// static analysis incl. XY-stratification (internal/datalog/analysis),
// magic sets (internal/datalog/magic), the centralized reference
// evaluator (internal/datalog/eval), and the distributed engine over the
// discrete-event radio simulator (internal/core, internal/nsim).
package snlog

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datalog/analysis"
	"repro/internal/datalog/ast"
	"repro/internal/datalog/builtin"
	"repro/internal/datalog/eval"
	"repro/internal/datalog/magic"
	"repro/internal/datalog/parser"
	"repro/internal/fault"
	"repro/internal/gpa"
	"repro/internal/nsim"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/topo"
)

// Re-exported core types.
type (
	// Program is a parsed deductive program.
	Program = ast.Program
	// Term is a logic term (constant, variable or compound).
	Term = ast.Term
	// Tuple is a ground fact.
	Tuple = eval.Tuple
	// Database is a set of tuples per predicate.
	Database = eval.Database
	// Analysis is the result of static program analysis.
	Analysis = analysis.Result
	// Registry holds built-in predicates and functions.
	Registry = builtin.Registry
	// FaultSchedule scripts deterministic faults — crash/recover,
	// link churn, partitions, duplication and reordering windows —
	// against virtual time (see WithFaults).
	FaultSchedule = fault.Schedule
	// FaultCounts is the fault injector's bookkeeping.
	FaultCounts = fault.Counts
)

// NewFaultSchedule returns an empty fault schedule; chain its builder
// methods (CrashWindow, LinkDown, Partition, Duplicate, Reorder) and
// pass it to WithFaults.
func NewFaultSchedule() *FaultSchedule { return fault.NewSchedule() }

// Scheme selects the in-network join strategy.
type Scheme = gpa.Scheme

// Available join schemes.
const (
	Perpendicular  = gpa.Perpendicular
	NaiveBroadcast = gpa.NaiveBroadcast
	LocalStorage   = gpa.LocalStorage
	Centralized    = gpa.Centralized
	Centroid       = gpa.Centroid
)

// Term constructors.
var (
	// Int builds an integer constant.
	Int = ast.Int64
	// Flt builds a floating-point constant.
	Flt = ast.Float64
	// Sym builds a symbolic constant.
	Sym = ast.Symbol
	// Str builds a string constant.
	Str = ast.String_
	// Var builds a variable.
	Var = ast.Var
	// Cmp builds a compound term f(args...).
	Cmp = ast.Compound
	// List builds a proper list.
	List = ast.List
)

// Incremental maintenance (centralized): the three approaches of
// Section IV-A, re-exported for applications that maintain views off-network.
type (
	// Maintainer incrementally maintains derived predicates under
	// insertions and deletions.
	Maintainer = eval.Maintainer
	// MaintMode selects the maintenance approach.
	MaintMode = eval.Mode
	// ProofTree witnesses how a derived tuple follows from base facts.
	ProofTree = eval.ProofTree
)

// Maintenance approaches.
const (
	SetOfDerivations = eval.SetOfDerivations
	Counting         = eval.Counting
	Rederivation     = eval.Rederivation
)

// NewMaintainer builds an incremental view maintainer for a program.
func NewMaintainer(src string, mode MaintMode) (*Maintainer, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return eval.NewMaintainer(p, mode, eval.Options{})
}

// NewTuple builds a ground fact.
func NewTuple(pred string, args ...Term) Tuple { return eval.NewTuple(pred, args...) }

// Parse parses a deductive program.
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// Check parses and statically analyzes a program: safety, stratification
// and XY-stratification.
func Check(src string) (*Analysis, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return analysis.Analyze(p)
}

// Eval runs the centralized reference evaluator over the program plus
// the given base facts.
func Eval(src string, facts []Tuple) (*Database, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	ev, err := eval.New(p, eval.Options{})
	if err != nil {
		return nil, err
	}
	return ev.Run(facts)
}

// MagicRewrite applies the magic-set transformation for a query literal
// such as "anc(a, X)" and returns the rewritten program source and the
// answer predicate key.
func MagicRewrite(src, query string) (string, string, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return "", "", err
	}
	qr, err := parser.ParseRule(query + ".")
	if err != nil {
		return "", "", fmt.Errorf("snlog: bad query literal: %w", err)
	}
	tr, err := magic.Rewrite(p, qr.Head)
	if err != nil {
		return "", "", err
	}
	return tr.Program.String(), tr.AnswerPred, nil
}

// Options configures a deployment. Prefer the functional options
// (WithScheme, WithLoss, ...) with Deploy; the struct remains exported
// for the deprecated positional constructors.
type Options struct {
	// Scheme is the GPA join scheme (default Perpendicular).
	Scheme Scheme
	// Server is the sink node for the Centralized scheme.
	Server int
	// MultiPass selects the multiple-pass join-computation scheme.
	MultiPass bool
	// SpatialRadius scopes storage/join regions (0 = unbounded).
	SpatialRadius float64
	// BandWidth generalizes PA rows/columns to geographic bands on
	// arbitrary topologies; DeployRandom defaults it to 1.5x the radio
	// range when unset.
	BandWidth float64
	// LossRate is the per-transmission message loss probability.
	LossRate float64
	// MaxSkew bounds the clock skew between any two nodes (τc).
	MaxSkew int64
	// Seed drives all randomness (delays, loss, skew).
	Seed int64
	// DefaultWindow is the sliding-window range for undeclared streams.
	DefaultWindow int64
	// Registry overrides the built-in registry.
	Registry *Registry
	// NaiveJoin disables the per-node argument-position indexes,
	// retaining full-scan lookups (A/B benchmarking; results identical).
	NaiveJoin bool
	// Retries is the link-layer ARQ re-attempt budget per transmission.
	Retries int
	// BatchLinks coalesces same-link messages within the skew bound
	// into batch frames (see core.Config.BatchLinks).
	BatchLinks bool
	// TraceCapacity, when positive, attaches a trace ring buffer
	// retaining up to this many trace events (send/recv/... plus the
	// fault kinds), readable via Cluster.Trace and Cluster.WriteTrace.
	TraceCapacity int
	// FaultSchedule, when non-nil, is applied to the deployment by a
	// deterministic fault injector seeded with FaultSeed.
	FaultSchedule *FaultSchedule
	// FaultSeed seeds the injector's probabilistic windows.
	FaultSeed int64
	// ReplayLog keeps per-node generation logs so Cluster.Replay can
	// repair state lost to faults (see core.Config.ReplayLog).
	ReplayLog bool
	// Provenance attaches a per-derivation lineage graph, queryable
	// through Cluster.Explain and Cluster.Blame (see WithProvenance).
	Provenance bool
	// Shards, when > 1, runs the simulation on the parallel sharded
	// scheduler (see WithShards).
	Shards int
}

// Option is a functional deployment option for Deploy.
type Option func(*Options)

// WithScheme selects the GPA join scheme (default Perpendicular).
func WithScheme(s Scheme) Option { return func(o *Options) { o.Scheme = s } }

// WithServer sets the sink node for the Centralized scheme.
func WithServer(node int) Option { return func(o *Options) { o.Server = node } }

// WithMultiPass selects the multiple-pass join-computation scheme.
func WithMultiPass() Option { return func(o *Options) { o.MultiPass = true } }

// WithSpatialRadius scopes storage/join regions (0 = unbounded).
func WithSpatialRadius(r float64) Option { return func(o *Options) { o.SpatialRadius = r } }

// WithBandWidth overrides the geographic band width used to generalize
// PA rows/columns on irregular topologies.
func WithBandWidth(w float64) Option { return func(o *Options) { o.BandWidth = w } }

// WithLoss sets the per-transmission message loss probability.
func WithLoss(rate float64) Option { return func(o *Options) { o.LossRate = rate } }

// WithRetries sets the link-layer ARQ re-attempt budget.
func WithRetries(n int) Option { return func(o *Options) { o.Retries = n } }

// WithMaxSkew bounds the clock skew between any two nodes (τc).
func WithMaxSkew(ticks int64) Option { return func(o *Options) { o.MaxSkew = ticks } }

// WithSeed sets the seed driving all randomness (delays, loss, skew).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithDefaultWindow sets the sliding-window range for undeclared
// streams.
func WithDefaultWindow(rng int64) Option { return func(o *Options) { o.DefaultWindow = rng } }

// WithBuiltins overrides the built-in predicate/function registry.
func WithBuiltins(reg *Registry) Option { return func(o *Options) { o.Registry = reg } }

// WithNaiveJoin retains full-scan window stores (A/B benchmarking).
func WithNaiveJoin() Option { return func(o *Options) { o.NaiveJoin = true } }

// WithBatchLinks enables batched link transport.
func WithBatchLinks() Option { return func(o *Options) { o.BatchLinks = true } }

// WithFaults applies a deterministic fault schedule to the deployment.
// The injector's probabilistic windows draw from their own rng seeded
// with seed, so the same (schedule, seed) replays byte-identically and
// an empty schedule perturbs nothing.
func WithFaults(s *FaultSchedule, seed int64) Option {
	return func(o *Options) { o.FaultSchedule, o.FaultSeed = s, seed }
}

// WithReplayLog keeps per-node generation logs so Cluster.Replay can
// repair state lost to injected faults.
func WithReplayLog() Option { return func(o *Options) { o.ReplayLog = true } }

// WithTrace attaches a trace ring buffer retaining up to capacity
// events.
func WithTrace(capacity int) Option { return func(o *Options) { o.TraceCapacity = capacity } }

// WithProvenance captures, for every settled derivation, which rule
// instantiation produced it from which body tuples, at which nodes and
// times, over how many radio hops. Cluster.Explain then answers "why
// is this tuple in the database" and Cluster.Blame "why did it settle
// when it did". Off by default: capture allocates per derivation, and
// every published baseline is produced with provenance off.
func WithProvenance() Option { return func(o *Options) { o.Provenance = true } }

// WithShards partitions the simulation spatially into n shards that run
// concurrently under conservative lookahead windows derived from the
// minimum per-hop delay (DESIGN.md §13). Results are equivalent but not
// byte-identical to the single-threaded schedule (per-shard RNG
// streams); a fixed (seed, shard count) still replays identically.
// n <= 1 keeps the default single-threaded scheduler, byte-identical to
// deployments without this option. Energy-model deployments ignore the
// option (deaths flip mid-transmission, which the parallel path cannot
// observe race-free).
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// Topology describes the network shape a program deploys onto; build
// one with Grid or Random and pass it to Deploy.
type Topology struct {
	build func(opt *Options) (*nsim.Network, error)
	desc  string
}

// String describes the topology ("grid 8x8").
func (t Topology) String() string { return t.desc }

// Grid is an m×m unit-spaced grid — the paper's evaluation topology.
func Grid(m int) Topology {
	return Topology{
		desc: fmt.Sprintf("grid %dx%d", m, m),
		build: func(opt *Options) (*nsim.Network, error) {
			return topo.Grid(m, simConfig(opt)), nil
		},
	}
}

// Random places n nodes uniformly at random in a side×side square with
// the given radio range, retrying until the topology is connected. The
// geographic band width defaults to 1.5× the radio range under the
// Perpendicular scheme, matching the GPA generalization.
func Random(n int, side, radioRange float64) Topology {
	return Topology{
		desc: fmt.Sprintf("random n=%d side=%g range=%g", n, side, radioRange),
		build: func(opt *Options) (*nsim.Network, error) {
			if opt.BandWidth == 0 && opt.Scheme == Perpendicular {
				opt.BandWidth = 1.5 * radioRange
			}
			return topo.RandomGeometric(n, side, radioRange, opt.Seed+1, simConfig(opt))
		},
	}
}

func simConfig(opt *Options) nsim.Config {
	return nsim.Config{
		Seed:     opt.Seed,
		LossRate: opt.LossRate,
		MaxSkew:  nsim.Time(opt.MaxSkew),
		Retries:  opt.Retries,
		Shards:   opt.Shards,
	}
}

// Cluster is a deployed program: a simulated network running the
// compiled per-node code, plus its observability layer (reg/trace).
type Cluster struct {
	Engine  *core.Engine
	Network *nsim.Network

	reg    *obs.Registry
	trace  *obs.Trace
	faults *fault.Injector
	prov   *provenance.Graph
}

// Deploy compiles src onto the given topology:
//
//	cluster, err := snlog.Deploy(snlog.Grid(8), src,
//	    snlog.WithScheme(snlog.Perpendicular),
//	    snlog.WithLoss(0.1), snlog.WithRetries(2),
//	    snlog.WithTrace(1<<16))
//
// Every deployment carries a counter registry (see Snapshot); a trace
// ring buffer is attached only with WithTrace.
func Deploy(t Topology, src string, opts ...Option) (*Cluster, error) {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return deployTopo(t, src, o)
}

// DeployGrid compiles src onto an m×m grid network.
//
// Deprecated: use Deploy(Grid(m), src, opts...).
func DeployGrid(m int, src string, opt Options) (*Cluster, error) {
	return deployTopo(Grid(m), src, opt)
}

// DeployRandom compiles src onto n nodes placed uniformly at random in a
// side×side square with the given radio range (retrying until connected).
//
// Deprecated: use Deploy(Random(n, side, radioRange), src, opts...).
func DeployRandom(n int, side, radioRange float64, src string, opt Options) (*Cluster, error) {
	return deployTopo(Random(n, side, radioRange), src, opt)
}

func deployTopo(t Topology, src string, opt Options) (*Cluster, error) {
	nw, err := t.build(&opt)
	if err != nil {
		return nil, err
	}
	return deploy(nw, src, opt)
}

func deploy(nw *nsim.Network, src string, opt Options) (*Cluster, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(nw, prog, core.Config{
		Scheme:        opt.Scheme,
		Server:        nsim.NodeID(opt.Server),
		MultiPass:     opt.MultiPass,
		SpatialRadius: opt.SpatialRadius,
		BandWidth:     opt.BandWidth,
		DefaultWindow: opt.DefaultWindow,
		Registry:      opt.Registry,
		NaiveJoin:     opt.NaiveJoin,
		BatchLinks:    opt.BatchLinks,
		ReplayLog:     opt.ReplayLog,
		Shards:        opt.Shards,
	})
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	var trace *obs.Trace
	if opt.TraceCapacity > 0 {
		trace = obs.NewTrace(opt.TraceCapacity)
	}
	nw.Observe(reg, trace)
	eng.Observe(reg, trace)
	var prov *provenance.Graph
	if opt.Provenance {
		// Attach before Start so seeded derived facts are captured.
		prov = provenance.NewGraph()
		eng.ObserveProvenance(reg, prov)
	}
	nw.Finalize()
	eng.Start()
	c := &Cluster{Engine: eng, Network: nw, reg: reg, trace: trace, prov: prov}
	if opt.FaultSchedule != nil {
		c.faults = fault.Attach(nw, opt.FaultSchedule, opt.FaultSeed)
		c.faults.Observe(reg)
	}
	return c, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return c.Network.Len() }

// Inject generates a base fact at a node, now. It returns an error —
// and injects nothing — for out-of-range nodes, non-ground tuples,
// derived or unknown predicates, and arity mismatches.
func (c *Cluster) Inject(node int, t Tuple) error {
	return c.Engine.Inject(nsim.NodeID(node), t)
}

// InjectAt generates a base fact at a node at an absolute virtual
// time. Validation errors are reported immediately (see Inject).
func (c *Cluster) InjectAt(at int64, node int, t Tuple) error {
	return c.Engine.InjectAt(nsim.Time(at), nsim.NodeID(node), t)
}

// DeleteAt deletes a previously injected base fact at its source node.
// Validation errors are reported immediately (see Inject).
func (c *Cluster) DeleteAt(at int64, node int, t Tuple) error {
	return c.Engine.InjectDeleteAt(nsim.Time(at), nsim.NodeID(node), t)
}

// Validate checks an injection/deletion pair against the deployed
// program and topology without scheduling anything: the same checks —
// and the same typed sentinels — Inject, InjectAt and DeleteAt apply.
// The serving layer uses it to validate buffered writes at enqueue
// time, before the coalesced batch is applied.
func (c *Cluster) Validate(node int, t Tuple) error {
	return c.Engine.Validate(nsim.NodeID(node), t)
}

// Run processes the network to quiescence and returns the virtual end
// time.
func (c *Cluster) Run() int64 { return int64(c.Network.Run(0)) }

// RunUntil processes events up to the given virtual time.
func (c *Cluster) RunUntil(t int64) int64 { return int64(c.Network.Run(nsim.Time(t))) }

// Replay schedules a repair pass that re-executes the logged base
// timeline to restore state lost to injected faults; run the cluster
// dry afterwards. Requires WithReplayLog. Call at quiescence, after
// the fault schedule has healed (FaultSchedule.End).
func (c *Cluster) Replay() error { return c.Engine.Replay() }

// FaultCounts reports the fault injector's bookkeeping (zero without
// WithFaults).
func (c *Cluster) FaultCounts() FaultCounts {
	if c.faults == nil {
		return FaultCounts{}
	}
	return c.faults.Counts
}

// Results returns the live derived tuples of a predicate ("name/arity").
func (c *Cluster) Results(pred string) []Tuple { return c.Engine.Derived(pred) }

// Validation sentinels: every validation failure from Inject, InjectAt,
// DeleteAt and Query wraps exactly one of these, matchable with
// errors.Is (the messages are unchanged). ErrBadNode: node ID out of
// range. ErrNotGround: tuple carries a variable. ErrDerivedPredicate:
// injecting a derived predicate. ErrUnknownPredicate: predicate the
// program never mentions. ErrArity: right name, wrong arity.
// ErrBasePredicate: querying a base predicate. ErrBadGoal: goal text
// that is not a single positive literal.
var (
	ErrBadNode          = core.ErrBadNode
	ErrNotGround        = core.ErrNotGround
	ErrDerivedPredicate = core.ErrDerivedPredicate
	ErrUnknownPredicate = core.ErrUnknownPredicate
	ErrArity            = core.ErrArity
	ErrBasePredicate    = core.ErrBasePredicate
	ErrBadGoal          = core.ErrBadGoal
)

// Query answers a point query against the cluster's live derived
// state: goal is a literal such as "path(n0, X)" — ground arguments
// must match exactly, variables bind (a repeated variable must match
// equal arguments). The goal is parsed and validated on the shared
// path the serving layer uses, returning the typed validation errors
// above; matching tuples come back in canonical order. Run the
// cluster to quiescence first — Query reads, it does not advance
// virtual time.
func (c *Cluster) Query(goal string) ([]Tuple, error) {
	lit, err := core.ParseGoal(c.Engine.Analysis().Program, goal)
	if err != nil {
		return nil, err
	}
	return core.MatchGoal(lit, c.Engine.Derived(lit.PredKey())), nil
}

// Registry exposes the cluster's live counter registry so embedding
// layers (the query-serving sessions of internal/serve, custom
// harnesses) can register their own counters and histograms next to
// the built-in ones; they then appear in Snapshot like any other
// metric. Most applications only need Snapshot.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Explain returns the derivation DAG of a derived tuple down to base
// facts — which rule instantiations support it, produced where, from
// which body tuples, settled when. Requires WithProvenance; a tuple
// with no live derivation (never derived, or derived then deleted)
// returns an error. Render the tree with its String method, or export
// it with WriteExplainDOT / WriteExplainJSONL.
func (c *Cluster) Explain(pred string, args ...Term) (*ExplainTree, error) {
	return c.Engine.Explain(pred, args...)
}

// Blame returns the critical path of a derived tuple: the chain of
// derivations it was gated on, with per-edge hop counts, route times
// and settle-to-settle waits. Requires WithProvenance.
func (c *Cluster) Blame(pred string, args ...Term) (*BlameResult, error) {
	return c.Engine.Blame(pred, args...)
}

// WriteExplainDOT writes a tuple's derivation DAG as a Graphviz
// digraph.
func (c *Cluster) WriteExplainDOT(w io.Writer, pred string, args ...Term) error {
	t, err := c.Explain(pred, args...)
	if err != nil {
		return err
	}
	return provenance.WriteDOT(w, t)
}

// WriteExplainJSONL writes a tuple's derivation DAG as JSONL, one node
// per line with parent links.
func (c *Cluster) WriteExplainJSONL(w io.Writer, pred string, args ...Term) error {
	t, err := c.Explain(pred, args...)
	if err != nil {
		return err
	}
	return provenance.WriteJSONL(w, t)
}

// CollectAggregate schedules a TAG-style in-network collection epoch for
// an aggregate rule's head predicate, rooted at the sink node. The
// result is readable with AggregateResult after Run.
func (c *Cluster) CollectAggregate(at int64, pred string, sink int) error {
	return c.Engine.CollectAggregateAt(nsim.Time(at), pred, nsim.NodeID(sink))
}

// AggregateResult returns the tuples produced by the last completed
// collection epoch of an aggregate predicate.
func (c *Cluster) AggregateResult(pred string) []Tuple {
	return c.Engine.AggregateResult(pred)
}

// ResultDB snapshots all derived predicates.
func (c *Cluster) ResultDB() *Database { return c.Engine.DerivedDB() }

// Observability re-exports: the counter snapshot and trace types of
// internal/obs, so applications can consume Cluster.Snapshot and
// Cluster.Trace without importing internal packages.
type (
	// Snapshot is a point-in-time view of every cluster metric, keyed
	// by dotted counter names ("nsim.messages", "core.derivations", ...;
	// the full list is documented in the README and in the Observe
	// methods of internal/nsim and internal/core).
	Snapshot = obs.Snapshot
	// TraceEvent is one recorded send/recv/drop/derive/delete/settle.
	TraceEvent = obs.Event
	// TraceFilter selects trace events for export (zero Node matches
	// only node 0; use AnyNode for no node constraint).
	TraceFilter = obs.Filter
	// ExplainTree is a derived tuple's derivation DAG down to base
	// facts (Cluster.Explain; render with String).
	ExplainTree = provenance.Tree
	// BlameResult is a derived tuple's critical path — the chain of
	// latest-settling derivations with per-edge attribution
	// (Cluster.Blame; render with String).
	BlameResult = provenance.Blame
)

// AnyNode is the TraceFilter wildcard for the Node field.
const AnyNode = obs.AnyNode

// Snapshot samples every registered metric of the deployment: the
// simulator's accounting ("nsim." prefix), the deductive engine's work
// and memory counters ("core." prefix), and the routing cache
// ("routing." prefix).
func (c *Cluster) Snapshot() Snapshot { return c.reg.Snapshot() }

// Trace returns the trace ring buffer, or nil unless the cluster was
// deployed with WithTrace.
func (c *Cluster) Trace() *obs.Trace { return c.trace }

// WriteTrace exports the retained trace events passing f as JSONL (one
// object per line) and returns how many were written. An error is
// returned when no trace is attached.
func (c *Cluster) WriteTrace(w io.Writer, f TraceFilter) (int, error) {
	if c.trace == nil {
		return 0, fmt.Errorf("snlog: no trace attached; deploy with WithTrace")
	}
	return c.trace.WriteJSONL(w, f)
}

// WriteTraceTail writes the newest n retained trace events passing the
// filter (n <= 0 = no limit) as JSONL — the windowed view the admin
// endpoint's /trace?n= serves. Requires WithTrace.
func (c *Cluster) WriteTraceTail(w io.Writer, f TraceFilter, n int) (int, error) {
	if c.trace == nil {
		return 0, fmt.Errorf("snlog: no trace attached; deploy with WithTrace")
	}
	return c.trace.WriteTailJSONL(w, f, n)
}

// Stats summarizes communication and memory costs.
type Stats struct {
	Messages    int64
	Bytes       int64
	Dropped     int64
	Retries     int64
	MaxNodeLoad int64
	ByKind      map[string]int64
	MaxMemory   int
	AvgMemory   float64
}

// Stats reads the cluster's accumulated cost counters. It is a fixed
// view over Snapshot — every field is a renamed snapshot counter —
// retained for the tables the experiments print; new code should
// prefer Snapshot, which exposes strictly more.
func (c *Cluster) Stats() Stats {
	s := c.Snapshot()
	avg := 0.0
	if nodes := s.Get("nsim.nodes"); nodes > 0 {
		avg = float64(s.Get("core.mem.total_tuples")) / float64(nodes)
	}
	return Stats{
		Messages:    s.Get("nsim.messages"),
		Bytes:       s.Get("nsim.bytes"),
		Dropped:     s.Get("nsim.dropped"),
		Retries:     s.Get("nsim.retries"),
		MaxNodeLoad: s.Get("nsim.max_node_load"),
		ByKind:      s.Prefix("nsim.messages."),
		MaxMemory:   int(s.Get("core.mem.max_tuples")),
		AvgMemory:   avg,
	}
}

// GridID returns the node ID at grid coordinates (p, q) of an m×m grid.
func GridID(m, p, q int) int { return int(topo.GridID(m, p, q)) }

// NodeSym returns the default symbolic name of node id (used by
// placement-based programs such as the shortest-path tree).
func NodeSym(id int) Term { return ast.Symbol(fmt.Sprintf("n%d", id)) }
