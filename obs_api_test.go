package snlog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// joinSrcAPI is the two-stream join used by the observability tests.
const joinSrcAPI = `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`

func injectPairs(t *testing.T, c *Cluster, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		if err := c.InjectAt(int64(i*7), (i*13)%c.Size(), NewTuple("ra", Int(int64(i)), Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		if err := c.InjectAt(int64(i*7+3), (i*17+5)%c.Size(), NewTuple("rb", Int(int64(i)), Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceEquivalenceE1 pins three equivalences on the E1-style
// two-stream join: (1) attaching the trace ring buffer does not
// perturb the run; (2) Stats — now a view over Snapshot — equals the
// simulator/engine fields it used to scrape; (3) the trace's
// aggregated counts equal the registry counters.
func TestTraceEquivalenceE1(t *testing.T) {
	legacy, err := Deploy(Grid(6), joinSrcAPI, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	injectPairs(t, legacy, 10)
	legacy.Run()

	observed, err := Deploy(Grid(6), joinSrcAPI, WithSeed(42), WithTrace(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	injectPairs(t, observed, 10)
	observed.Run()

	// (1) Byte-identical run: same messages, bytes, results.
	if legacy.Network.TotalSent != observed.Network.TotalSent ||
		legacy.Network.TotalBytes != observed.Network.TotalBytes {
		t.Fatalf("observed run diverged: %d/%d msgs, %d/%d bytes",
			observed.Network.TotalSent, legacy.Network.TotalSent,
			observed.Network.TotalBytes, legacy.Network.TotalBytes)
	}
	lr, or := legacy.Results("out/2"), observed.Results("out/2")
	if len(lr) != len(or) || len(or) == 0 {
		t.Fatalf("results diverged: %d vs %d", len(or), len(lr))
	}
	for i := range lr {
		if !lr[i].Equal(or[i]) {
			t.Fatalf("result %d diverged: %v vs %v", i, or[i], lr[i])
		}
	}

	// (2) Stats view over Snapshot equals the legacy field scrape.
	st := observed.Stats()
	nw := observed.Network
	if st.Messages != nw.TotalSent || st.Bytes != nw.TotalBytes || st.Dropped != nw.TotalDropped {
		t.Fatalf("Stats diverged from simulator fields: %+v", st)
	}
	if st.MaxNodeLoad != nw.MaxNodeLoad() {
		t.Fatalf("MaxNodeLoad = %d, want %d", st.MaxNodeLoad, nw.MaxNodeLoad())
	}
	maxMem, avgMem := observed.Engine.MaxMemoryTuples()
	if st.MaxMemory != maxMem || st.AvgMemory != avgMem {
		t.Fatalf("memory stats diverged: (%d, %f) vs (%d, %f)", st.MaxMemory, st.AvgMemory, maxMem, avgMem)
	}
	for k, v := range nw.KindCounts {
		if st.ByKind[k] != v {
			t.Fatalf("ByKind[%s] = %d, want %d", k, st.ByKind[k], v)
		}
	}

	// (3) Trace totals equal counter totals. TotalKinds counts the
	// run's lifetime, so the equality holds at any ring capacity.
	agg := observed.Trace().TotalKinds()
	snap := observed.Snapshot()
	pairs := map[string]struct {
		kind    obs.EventKind
		counter string
	}{
		"send":   {obs.EvSend, "nsim.messages"},
		"recv":   {obs.EvRecv, "nsim.received"},
		"drop":   {obs.EvDrop, "nsim.dropped"},
		"derive": {obs.EvDerive, "core.derivations"},
		"settle": {obs.EvSettle, "core.settles"},
	}
	for name, p := range pairs {
		if agg[p.kind] != snap.Get(p.counter) {
			t.Errorf("%s: trace has %d, counter %s = %d", name, agg[p.kind], p.counter, snap.Get(p.counter))
		}
	}
	if agg[obs.EvSend] == 0 || agg[obs.EvDerive] == 0 {
		t.Fatal("trace recorded no sends or derivations")
	}
}

// TestTraceEquivalenceLossy covers the drop/retry hooks under loss.
func TestTraceEquivalenceLossy(t *testing.T) {
	c, err := Deploy(Grid(6), joinSrcAPI,
		WithSeed(7), WithLoss(0.2), WithRetries(3), WithTrace(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	injectPairs(t, c, 10)
	c.Run()
	snap := c.Snapshot()
	agg := c.Trace().TotalKinds()
	if snap.Get("nsim.dropped") == 0 || snap.Get("nsim.retries") == 0 {
		t.Fatalf("lossy run recorded no drops/retries: %v", snap.Counters)
	}
	if agg[obs.EvDrop] != snap.Get("nsim.dropped") {
		t.Fatalf("drop trace %d != counter %d", agg[obs.EvDrop], snap.Get("nsim.dropped"))
	}
	if agg[obs.EvSend] != snap.Get("nsim.messages") {
		t.Fatalf("send trace %d != counter %d", agg[obs.EvSend], snap.Get("nsim.messages"))
	}
	st := c.Stats()
	if st.Retries != c.Network.TotalRetries || st.Dropped != c.Network.TotalDropped {
		t.Fatalf("Stats retry/drop view diverged: %+v", st)
	}
}

func TestWriteTrace(t *testing.T) {
	c, err := Deploy(Grid(4), joinSrcAPI, WithSeed(3), WithTrace(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	injectPairs(t, c, 4)
	c.Run()
	var buf bytes.Buffer
	n, err := c.WriteTrace(&buf, TraceFilter{Node: AnyNode, Kinds: []obs.EventKind{obs.EvSend}})
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != c.Snapshot().Get("nsim.messages") {
		t.Fatalf("exported %d send lines, want %d", n, c.Snapshot().Get("nsim.messages"))
	}
	if got := int64(bytes.Count(buf.Bytes(), []byte("\n"))); got != int64(n) {
		t.Fatalf("wrote %d lines for %d events", got, n)
	}
}

func TestInjectErrors(t *testing.T) {
	c, err := Deploy(Grid(4), joinSrcAPI, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"node out of range", c.Inject(99, NewTuple("ra", Int(1), Int(2))), "out of range"},
		{"negative node", c.Inject(-1, NewTuple("ra", Int(1), Int(2))), "out of range"},
		{"derived predicate", c.Inject(0, NewTuple("out", Int(1), Int(2))), "derived predicate"},
		{"unknown predicate", c.Inject(0, NewTuple("nosuch", Int(1))), "not mentioned"},
		{"arity mismatch", c.Inject(0, NewTuple("ra", Int(1))), "arity mismatch"},
		{"non-ground", c.Inject(0, Tuple{Pred: "ra/2", Args: []Term{Int(1), Var("X")}}), "not ground"},
		{"InjectAt out of range", c.InjectAt(10, 400, NewTuple("ra", Int(1), Int(2))), "out of range"},
		{"DeleteAt out of range", c.DeleteAt(10, 400, NewTuple("ra", Int(1), Int(2))), "out of range"},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, tc.err, tc.want)
		}
	}
	// Nothing above should have scheduled anything.
	if c.Network.Pending() != 0 {
		t.Fatalf("invalid injections scheduled %d events", c.Network.Pending())
	}
	// A valid injection still works.
	if err := c.Inject(0, NewTuple("ra", Int(1), Int(1))); err != nil {
		t.Fatalf("valid injection rejected: %v", err)
	}
	// DeleteAt of a never-injected tuple is a validation pass but a
	// fire-time no-op; deleting through an unknown predicate errors.
	if err := c.DeleteAt(5, 0, NewTuple("nosuch", Int(1))); err == nil {
		t.Error("DeleteAt of unknown predicate should error")
	}
}

// TestSnapshotWithoutTrace: every deployment has a registry even
// without WithTrace, and Trace() is nil.
func TestSnapshotWithoutTrace(t *testing.T) {
	c, err := Deploy(Grid(4), joinSrcAPI, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	injectPairs(t, c, 4)
	c.Run()
	if c.Trace() != nil {
		t.Fatal("trace attached without WithTrace")
	}
	if _, err := c.WriteTrace(&bytes.Buffer{}, TraceFilter{Node: AnyNode}); err == nil {
		t.Fatal("WriteTrace without a trace should error")
	}
	snap := c.Snapshot()
	if snap.Get("nsim.messages") != c.Network.TotalSent || snap.Get("nsim.messages") == 0 {
		t.Fatalf("snapshot messages = %d, want %d", snap.Get("nsim.messages"), c.Network.TotalSent)
	}
	if snap.Get("core.derivations") == 0 {
		t.Fatal("no derivations counted")
	}
}
