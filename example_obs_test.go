package snlog

import (
	"fmt"
	"os"
)

// ExampleDeploy shows the topology-plus-options deployment API.
func ExampleDeploy() {
	cluster, err := Deploy(Grid(6), `
.base temp/2.
alert(N, T) :- temp(N, T), T > 90.
.query alert/2.
`, WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := cluster.Inject(12, NewTuple("temp", Sym("n12"), Int(95))); err != nil {
		fmt.Println(err)
		return
	}
	cluster.Run()
	for _, a := range cluster.Results("alert/2") {
		fmt.Println(a)
	}
	// Output:
	// alert(n12, 95)
}

// ExampleDeploy_options configures the radio model and join scheme
// through functional options.
func ExampleDeploy_options() {
	cluster, err := Deploy(Grid(6), `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`,
		WithScheme(Perpendicular),
		WithSeed(7),
		WithLoss(0.1),
		WithRetries(2),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	cluster.Inject(3, NewTuple("ra", Int(1), Int(2)))
	cluster.Inject(30, NewTuple("rb", Int(2), Int(3)))
	cluster.Run()
	fmt.Println(cluster.Results("out/2"))
	// Output:
	// [out(1, 3)]
}

// ExampleCluster_Snapshot reads the counter registry every deployment
// carries; Stats is a fixed view over the same snapshot.
func ExampleCluster_Snapshot() {
	cluster, _ := Deploy(Grid(4), `
.base r/1.
d(X) :- r(X).
`, WithSeed(2))
	cluster.Inject(5, NewTuple("r", Int(1)))
	cluster.Run()
	snap := cluster.Snapshot()
	fmt.Println("derivations:", snap.Get("core.derivations"))
	fmt.Println("messages match stats:", snap.Get("nsim.messages") == cluster.Stats().Messages)
	// Output:
	// derivations: 1
	// messages match stats: true
}

// ExampleCluster_WriteTrace exports a filtered JSONL trace of a run
// deployed with WithTrace.
func ExampleCluster_WriteTrace() {
	cluster, _ := Deploy(Grid(4), `
.base r/1.
d(X) :- r(X).
`, WithSeed(2), WithTrace(4096))
	cluster.Inject(5, NewTuple("r", Int(1)))
	cluster.Run()
	n, _ := cluster.WriteTrace(os.Stdout, TraceFilter{Node: AnyNode, Pred: "d/1"})
	fmt.Println("events:", n)
	// Output:
	// {"at":336,"kind":"settle","node":10,"peer":-1,"pred":"d/1","size":0}
	// {"at":336,"kind":"derive","node":10,"peer":-1,"pred":"d/1","size":0}
	// events: 2
}
