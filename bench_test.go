package snlog

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (experiments E1..E10 in DESIGN.md). Each bench
// re-runs the corresponding experiment function — the same code the
// snbench CLI uses to regenerate EXPERIMENTS.md — and reports the
// headline figure as a custom metric so `go test -bench` output records
// the reproduced numbers, not just wall time.

import (
	"testing"

	"repro/internal/datalog/eval"
	"repro/internal/datalog/parser"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// headline extracts a numeric cell from a table for ReportMetric.
func headline(t *metrics.Table, row, col int) string {
	rows := t.Rows()
	if row < len(rows) && col < len(rows[row]) {
		return rows[row][col]
	}
	return ""
}

func BenchmarkE1JoinApproaches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E1JoinApproaches([]int{6, 10}, 10)
		if len(tbl.Rows()) != 10 {
			b.Fatalf("unexpected table shape: %d rows", len(tbl.Rows()))
		}
	}
}

func BenchmarkE2LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E2LoadBalance(10, 30)
		if len(tbl.Rows()) != 3 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE3MultiStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E3MultiStream(8, []int{2, 3, 4}, 4)
		if len(tbl.Rows()) != 6 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE4Spatial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E4Spatial(10, []float64{0, 8, 4, 2}, 8)
		if len(tbl.Rows()) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE5SPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E5SPT([]int{5, 7})
		for _, row := range tbl.Rows() {
			if row[len(row)-1] != "true" {
				b.Fatalf("SPT incorrect: %v", row)
			}
		}
	}
}

func BenchmarkE6Deletions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E6Deletions(150, []float64{0.1, 0.3, 0.5})
		if len(tbl.Rows()) != 9 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE7Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E7Loss(8, []float64{0, 0.1, 0.2}, 12)
		if len(tbl.Rows()) != 6 { // two rows (ARQ off/on) per loss rate

			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE8Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E8Latency([]int{6, 10})
		if len(tbl.Rows()) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE9Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E9Memory(7)
		if len(tbl.Rows()) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE10Magic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E10Magic(6, 10)
		if len(tbl.Rows()) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE11Aggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E11Aggregation([]int{6, 10})
		if len(tbl.Rows()) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE12Lifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E12Lifetime(8, 500, 60)
		if len(tbl.Rows()) != 3 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkE13Batching(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E13Batching([]int{6, 10}, 4, 3)
		if len(tbl.Rows()) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

// --- micro-benchmarks of the core machinery ---

func BenchmarkParse(b *testing.B) {
	src := `
.base veh/3.
cov(L, T) :- veh(enemy, L, T), veh(friendly, L2, T), dist(L, L2) <= 5.
uncov(L, T) :- NOT cov(L, T), veh(enemy, L, T).
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCentralizedEvalTC(b *testing.B) {
	src := `
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`
	var facts []Tuple
	for i := int64(0); i < 60; i++ {
		facts = append(facts, NewTuple("edge", Int(i), Int(i+1)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Eval(src, facts)
		if err != nil {
			b.Fatal(err)
		}
		if db.Count("path/2") != 60*61/2 {
			b.Fatal("wrong result")
		}
	}
}

func benchDistributedJoinGrid10(b *testing.B, naive bool) {
	src := `
.base ra/2.
.base rb/2.
out(X, Z) :- ra(X, Y), rb(Y, Z).
`
	for i := 0; i < b.N; i++ {
		opts := []Option{WithSeed(int64(i))}
		if naive {
			opts = append(opts, WithNaiveJoin())
		}
		c, err := Deploy(Grid(10), src, opts...)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			c.InjectAt(int64(k*7), (k*13)%c.Size(), NewTuple("ra", Int(int64(k)), Int(int64(k))))
			c.InjectAt(int64(k*7+3), (k*17+5)%c.Size(), NewTuple("rb", Int(int64(k)), Int(int64(k))))
		}
		c.Run()
		if len(c.Results("out/2")) != 10 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkDistributedJoinGrid10(b *testing.B) { benchDistributedJoinGrid10(b, false) }

// BenchmarkDistributedJoinGrid10Naive retains the pre-index full-scan
// window stores for A/B comparison; message counts must match the
// indexed run exactly (TestStoreIndexEquivalence pins this).
func BenchmarkDistributedJoinGrid10Naive(b *testing.B) { benchDistributedJoinGrid10(b, true) }

// benchJoin exercises the centralized join machinery on the 60-node
// transitive-closure workload with and without argument-position
// indexes. Results are byte-identical across modes (TestIndexedEquivalence);
// only the lookup strategy differs.
func benchJoin(b *testing.B, naive bool) {
	src := `
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`
	p, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	var facts []Tuple
	for i := int64(0); i < 60; i++ {
		facts = append(facts, NewTuple("edge", Int(i), Int(i+1)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := eval.New(p, eval.Options{NaiveJoin: naive})
		if err != nil {
			b.Fatal(err)
		}
		db, err := ev.Run(facts)
		if err != nil {
			b.Fatal(err)
		}
		if db.Count("path/2") != 60*61/2 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkJoinIndexed(b *testing.B) { benchJoin(b, false) }

func BenchmarkJoinNaive(b *testing.B) { benchJoin(b, true) }
